//! Scheduling policies: who gets the next quantum.
//!
//! The paper implements three (§3.5): fair sharing (round-robin), weighted
//! fair sharing (a job receives `weight` consecutive quanta per turn) and
//! priority scheduling (the highest-priority job always runs; equals share
//! round-robin). [`DeficitRoundRobin`] is an extension beyond the paper
//! (its "more policies" future work): it carries unused quantum *budget*
//! across turns, smoothing the carry-over error that overflow kernels
//! introduce.

use serving::JobId;
use simtime::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Decides which registered job holds the GPU token.
///
/// Policies see three kinds of events — admission, removal and quantum
/// expiry — and return the job that should hold the token afterwards
/// (`None` when no job is registered). The surrounding
/// [`crate::OlympianScheduler`] owns the cost metering and calls the policy
/// only at quantum boundaries, exactly as `scheduler.updateTokenInfo` does
/// in Algorithm 2.
pub trait Policy: fmt::Debug + Send {
    /// A job arrived. Returns the token holder afterwards.
    fn admit(&mut self, job: JobId, weight: u32, priority: u32, current: Option<JobId>)
        -> Option<JobId>;

    /// A job departed. Returns the token holder afterwards.
    fn remove(&mut self, job: JobId, current: Option<JobId>) -> Option<JobId>;

    /// The holder consumed one quantum. Returns the next holder (may be the
    /// same job, e.g. under weights or when it is alone).
    fn quantum_expired(&mut self, holder: JobId) -> Option<JobId>;

    /// Short policy name, used in scheduler/report names.
    fn name(&self) -> &str;

    /// Binds a job's run deadline and expected whole-run GPU duration (from
    /// its resolved profile) at registration, before [`Policy::admit`].
    /// Deadline-aware policies (PR 9's EDF / least-laxity) order grants by
    /// this state; every other policy ignores it — the default is a no-op.
    fn bind_deadline(
        &mut self,
        _job: JobId,
        _deadline: Option<SimTime>,
        _expected_gpu: SimDuration,
    ) {
    }

    /// Reports a job's profiled-cost progress, in parts-per-million of its
    /// total cost, after each completed GPU node. Least-laxity uses this to
    /// estimate remaining work; the default is a no-op.
    fn note_progress(&mut self, _job: JobId, _completed_ppm: u64) {}
}

fn ring_next(ring: &[JobId], after: JobId) -> Option<JobId> {
    if ring.is_empty() {
        return None;
    }
    match ring.iter().position(|&j| j == after) {
        Some(i) => Some(ring[(i + 1) % ring.len()]),
        None => Some(ring[0]),
    }
}

/// Fair sharing: one quantum per job, round-robin in arrival order.
#[derive(Debug, Default)]
pub struct RoundRobin {
    ring: Vec<JobId>,
}

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for RoundRobin {
    fn admit(
        &mut self,
        job: JobId,
        _weight: u32,
        _priority: u32,
        current: Option<JobId>,
    ) -> Option<JobId> {
        self.ring.push(job);
        current.or(Some(job))
    }

    fn remove(&mut self, job: JobId, current: Option<JobId>) -> Option<JobId> {
        if current == Some(job) {
            let next = ring_next(&self.ring, job).filter(|&n| n != job);
            self.ring.retain(|&j| j != job);
            next
        } else {
            self.ring.retain(|&j| j != job);
            current
        }
    }

    fn quantum_expired(&mut self, holder: JobId) -> Option<JobId> {
        ring_next(&self.ring, holder)
    }

    fn name(&self) -> &str {
        "fair"
    }
}

/// Weighted fair sharing: a job with weight `w` receives `w` consecutive
/// quanta per round-robin turn (paper §3.5, Figure 17).
#[derive(Debug, Default)]
pub struct WeightedFair {
    ring: Vec<JobId>,
    weights: BTreeMap<JobId, u32>,
    quanta_this_turn: u32,
}

impl WeightedFair {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for WeightedFair {
    fn admit(
        &mut self,
        job: JobId,
        weight: u32,
        _priority: u32,
        current: Option<JobId>,
    ) -> Option<JobId> {
        self.ring.push(job);
        self.weights.insert(job, weight.max(1));
        current.or(Some(job))
    }

    fn remove(&mut self, job: JobId, current: Option<JobId>) -> Option<JobId> {
        self.weights.remove(&job);
        if current == Some(job) {
            let next = ring_next(&self.ring, job).filter(|&n| n != job);
            self.ring.retain(|&j| j != job);
            self.quanta_this_turn = 0;
            next
        } else {
            self.ring.retain(|&j| j != job);
            current
        }
    }

    fn quantum_expired(&mut self, holder: JobId) -> Option<JobId> {
        self.quanta_this_turn += 1;
        let budget = self.weights.get(&holder).copied().unwrap_or(1);
        if self.quanta_this_turn < budget {
            Some(holder)
        } else {
            self.quanta_this_turn = 0;
            ring_next(&self.ring, holder)
        }
    }

    fn name(&self) -> &str {
        "weighted-fair"
    }
}

/// Priority scheduling: the highest-priority registered job always receives
/// the next quantum; jobs of equal priority round-robin among themselves
/// (paper §3.5, Figure 18).
#[derive(Debug, Default)]
pub struct Priority {
    /// priority → arrival-ordered ring. `BTreeMap` keeps deterministic
    /// highest-priority lookup.
    levels: BTreeMap<u32, Vec<JobId>>,
    priorities: BTreeMap<JobId, u32>,
}

impl Priority {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn top_ring(&self) -> Option<&Vec<JobId>> {
        self.levels.iter().next_back().map(|(_, ring)| ring)
    }

    fn pick(&self, current: Option<JobId>) -> Option<JobId> {
        let top = self.top_ring()?;
        match current {
            Some(c) if top.contains(&c) => Some(c),
            _ => top.first().copied(),
        }
    }
}

impl Policy for Priority {
    fn admit(
        &mut self,
        job: JobId,
        _weight: u32,
        priority: u32,
        current: Option<JobId>,
    ) -> Option<JobId> {
        self.levels.entry(priority).or_default().push(job);
        self.priorities.insert(job, priority);
        // Preemption happens at quantum granularity: a higher-priority
        // arrival does not interrupt the current quantum, so the holder is
        // kept if one exists (`pick` switches level at the next expiry).
        current.or_else(|| self.pick(None))
    }

    fn remove(&mut self, job: JobId, current: Option<JobId>) -> Option<JobId> {
        if let Some(prio) = self.priorities.remove(&job) {
            if let Some(ring) = self.levels.get_mut(&prio) {
                ring.retain(|&j| j != job);
                if ring.is_empty() {
                    self.levels.remove(&prio);
                }
            }
        }
        if current == Some(job) {
            self.pick(None)
        } else {
            current
        }
    }

    fn quantum_expired(&mut self, holder: JobId) -> Option<JobId> {
        let top = self.top_ring()?;
        if top.contains(&holder) {
            ring_next(top, holder)
        } else {
            // A higher-priority job arrived during the quantum: switch up.
            top.first().copied()
        }
    }

    fn name(&self) -> &str {
        "priority"
    }
}

/// Deficit round robin (extension beyond the paper): each turn a job's
/// budget grows by `quantum_credit × weight`; it keeps the token until the
/// budget is spent, and *unused or overdrawn* budget carries to its next
/// turn. With the scheduler charging overflow kernels to their launching
/// job, DRR absorbs that carry-over instead of shortening the next quantum.
#[derive(Debug, Default)]
pub struct DeficitRoundRobin {
    ring: Vec<JobId>,
    weights: BTreeMap<JobId, u32>,
    deficit: BTreeMap<JobId, i64>,
}

impl DeficitRoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for DeficitRoundRobin {
    fn admit(
        &mut self,
        job: JobId,
        weight: u32,
        _priority: u32,
        current: Option<JobId>,
    ) -> Option<JobId> {
        let w = weight.max(1);
        self.ring.push(job);
        self.weights.insert(job, w);
        // Budget is credited when a turn starts; the very first holder gets
        // its credit here since no rotation will grant it one.
        let grabs_token = current.is_none();
        self.deficit.insert(job, if grabs_token { i64::from(w) } else { 0 });
        current.or(Some(job))
    }

    fn remove(&mut self, job: JobId, current: Option<JobId>) -> Option<JobId> {
        self.weights.remove(&job);
        self.deficit.remove(&job);
        if current == Some(job) {
            let next = ring_next(&self.ring, job).filter(|&n| n != job);
            self.ring.retain(|&j| j != job);
            next
        } else {
            self.ring.retain(|&j| j != job);
            current
        }
    }

    fn quantum_expired(&mut self, holder: JobId) -> Option<JobId> {
        let d = self.deficit.entry(holder).or_insert(0);
        *d -= 1;
        if *d > 0 {
            Some(holder)
        } else {
            let next = ring_next(&self.ring, holder);
            if let Some(n) = next {
                let w = i64::from(self.weights.get(&n).copied().unwrap_or(1));
                let dn = self.deficit.entry(n).or_insert(0);
                *dn += w;
            }
            next
        }
    }

    fn name(&self) -> &str {
        "deficit-round-robin"
    }
}

/// Lottery scheduling (extension beyond the paper): each quantum is a
/// drawing; a job's chance of winning is proportional to its ticket count
/// (its weight). Expected shares match weighted fair sharing, but turns are
/// probabilistic — no job can be starved systematically and no strict turn
/// order is observable. Deterministic given its seed.
#[derive(Debug)]
pub struct Lottery {
    ring: Vec<JobId>,
    tickets: BTreeMap<JobId, u32>,
    rng: simtime::DetRng,
}

impl Lottery {
    /// Creates the policy with a draw seed.
    pub fn new(seed: u64) -> Self {
        Lottery {
            ring: Vec::new(),
            tickets: BTreeMap::new(),
            rng: simtime::DetRng::new(seed ^ 0x707E_1CE7),
        }
    }

    fn draw(&mut self) -> Option<JobId> {
        let total: u64 = self
            .ring
            .iter()
            .map(|j| u64::from(self.tickets.get(j).copied().unwrap_or(1)))
            .sum();
        if total == 0 {
            return None;
        }
        let mut x = self.rng.range_u64(0, total);
        for &j in &self.ring {
            let t = u64::from(self.tickets.get(&j).copied().unwrap_or(1));
            if x < t {
                return Some(j);
            }
            x -= t;
        }
        self.ring.last().copied()
    }
}

impl Policy for Lottery {
    fn admit(
        &mut self,
        job: JobId,
        weight: u32,
        _priority: u32,
        current: Option<JobId>,
    ) -> Option<JobId> {
        self.ring.push(job);
        self.tickets.insert(job, weight.max(1));
        current.or(Some(job))
    }

    fn remove(&mut self, job: JobId, current: Option<JobId>) -> Option<JobId> {
        self.ring.retain(|&j| j != job);
        self.tickets.remove(&job);
        if current == Some(job) {
            self.draw()
        } else {
            current
        }
    }

    fn quantum_expired(&mut self, _holder: JobId) -> Option<JobId> {
        self.draw()
    }

    fn name(&self) -> &str {
        "lottery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    #[test]
    fn round_robin_rotates_in_arrival_order() {
        let mut p = RoundRobin::new();
        assert_eq!(p.admit(j(1), 1, 0, None), Some(j(1)));
        assert_eq!(p.admit(j(2), 1, 0, Some(j(1))), Some(j(1)));
        assert_eq!(p.admit(j(3), 1, 0, Some(j(1))), Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(2)));
        assert_eq!(p.quantum_expired(j(2)), Some(j(3)));
        assert_eq!(p.quantum_expired(j(3)), Some(j(1)));
    }

    #[test]
    fn round_robin_alone_keeps_token() {
        let mut p = RoundRobin::new();
        p.admit(j(1), 1, 0, None);
        assert_eq!(p.quantum_expired(j(1)), Some(j(1)));
    }

    #[test]
    fn round_robin_removal_of_holder_passes_token() {
        let mut p = RoundRobin::new();
        p.admit(j(1), 1, 0, None);
        p.admit(j(2), 1, 0, Some(j(1)));
        assert_eq!(p.remove(j(1), Some(j(1))), Some(j(2)));
        assert_eq!(p.remove(j(2), Some(j(2))), None);
    }

    #[test]
    fn round_robin_removal_of_bystander_keeps_holder() {
        let mut p = RoundRobin::new();
        p.admit(j(1), 1, 0, None);
        p.admit(j(2), 1, 0, Some(j(1)));
        assert_eq!(p.remove(j(2), Some(j(1))), Some(j(1)));
    }

    #[test]
    fn weighted_fair_gives_consecutive_quanta() {
        let mut p = WeightedFair::new();
        p.admit(j(1), 2, 0, None);
        p.admit(j(2), 1, 0, Some(j(1)));
        // weight 2: stays for a second quantum, then rotates
        assert_eq!(p.quantum_expired(j(1)), Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(2)));
        assert_eq!(p.quantum_expired(j(2)), Some(j(1)));
    }

    #[test]
    fn weighted_fair_zero_weight_clamped_to_one() {
        let mut p = WeightedFair::new();
        p.admit(j(1), 0, 0, None);
        p.admit(j(2), 1, 0, Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(2)));
    }

    #[test]
    fn priority_prefers_higher_level() {
        let mut p = Priority::new();
        p.admit(j(1), 1, 1, None);
        p.admit(j(2), 1, 5, Some(j(1)));
        // The low-priority holder finishes its quantum, then yields to the
        // higher-priority arrival.
        assert_eq!(p.quantum_expired(j(1)), Some(j(2)));
        // High-priority job keeps the token while it lives.
        assert_eq!(p.quantum_expired(j(2)), Some(j(2)));
        // When it leaves, the lower level resumes.
        assert_eq!(p.remove(j(2), Some(j(2))), Some(j(1)));
    }

    #[test]
    fn priority_round_robins_within_level() {
        let mut p = Priority::new();
        p.admit(j(1), 1, 7, None);
        p.admit(j(2), 1, 7, Some(j(1)));
        p.admit(j(3), 1, 2, Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(2)));
        assert_eq!(p.quantum_expired(j(2)), Some(j(1)));
        p.remove(j(1), Some(j(2)));
        p.remove(j(2), Some(j(2)));
        assert_eq!(p.pick(None), Some(j(3)));
    }

    #[test]
    fn deficit_round_robin_carries_budget() {
        let mut p = DeficitRoundRobin::new();
        p.admit(j(1), 2, 0, None);
        p.admit(j(2), 1, 0, Some(j(1)));
        // j1 admitted with deficit 2: spends both, then j2 gets credit 1.
        assert_eq!(p.quantum_expired(j(1)), Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(2)));
        assert_eq!(p.quantum_expired(j(2)), Some(j(1)));
    }

    #[test]
    fn lottery_shares_follow_tickets() {
        let mut p = Lottery::new(42);
        p.admit(j(1), 3, 0, None);
        p.admit(j(2), 1, 0, Some(j(1)));
        let mut holder = j(1);
        let mut wins = [0u32; 3];
        for _ in 0..4000 {
            holder = p.quantum_expired(holder).expect("jobs live");
            wins[holder.0 as usize] += 1;
        }
        let share = f64::from(wins[1]) / 4000.0;
        assert!((share - 0.75).abs() < 0.03, "3-ticket share {share}");
    }

    #[test]
    fn lottery_is_deterministic_per_seed() {
        let run = || {
            let mut p = Lottery::new(9);
            p.admit(j(1), 1, 0, None);
            p.admit(j(2), 1, 0, Some(j(1)));
            (0..50).map(|_| p.quantum_expired(j(1)).expect("live")).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lottery_removal_of_holder_redraws() {
        let mut p = Lottery::new(1);
        p.admit(j(1), 1, 0, None);
        p.admit(j(2), 1, 0, Some(j(1)));
        assert_eq!(p.remove(j(1), Some(j(1))), Some(j(2)));
        assert_eq!(p.remove(j(2), Some(j(2))), None);
    }

    #[test]
    fn empty_policies_return_none() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.quantum_expired(j(9)), None);
        let mut pr = Priority::new();
        assert_eq!(pr.quantum_expired(j(9)), None);
    }
}
