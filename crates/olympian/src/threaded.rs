//! Cooperative gang scheduling on **real OS threads** — the mechanism of
//! paper §3.4 outside the simulator.
//!
//! The discrete-event engine models gang suspension; this module *performs*
//! it: each job is a gang of `std::thread` workers, the yield hook parks
//! them on a condition variable, and a token rotated by cost accumulation
//! decides which gang may drive the (mutex-serialized) GPU stand-in.
//!
//! Used by the `live_gang` example and integration tests to show that the
//! cooperative mechanism — suspend every CPU thread of one DNN job, resume
//! another's, at node boundaries — works with real synchronization
//! primitives, not just in simulation.
//!
//! ```
//! use olympian::threaded::{GangPool, GangWorkload};
//! use std::time::Duration;
//!
//! let pool = GangPool::fair(500); // quantum: 500 cost units
//! let outcome = pool.run(vec![
//!     GangWorkload::new(40, 25, 2), // 40 nodes × 25 cost units, 2 threads
//!     GangWorkload::new(40, 25, 2),
//! ]);
//! assert_eq!(outcome.finish_order.len(), 2);
//! assert!(outcome.switches >= 2);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Identifier of a gang (one job) in a threaded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GangId(pub usize);

/// Workload of one gang: a sequence of simulated GPU nodes.
#[derive(Debug, Clone)]
pub struct GangWorkload {
    /// Number of nodes to execute.
    pub nodes: u32,
    /// Cost charged per node (also its simulated device time in µs/10).
    pub node_cost: u64,
    /// Gang width: number of OS threads executing this job.
    pub threads: u32,
    /// Scheduling weight: consecutive quanta granted per turn (≥ 1).
    pub weight: u32,
}

impl GangWorkload {
    /// Creates a unit-weight workload.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn new(nodes: u32, node_cost: u64, threads: u32) -> Self {
        assert!(nodes > 0 && node_cost > 0 && threads > 0, "empty gang workload");
        GangWorkload {
            nodes,
            node_cost,
            threads,
            weight: 1,
        }
    }

    /// Sets the scheduling weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero.
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight > 0, "weight must be at least 1");
        self.weight = weight;
        self
    }
}

/// Results of a threaded run.
#[derive(Debug, Clone)]
pub struct GangOutcome {
    /// Gangs in the order they finished.
    pub finish_order: Vec<GangId>,
    /// Wall-clock finish time of each gang (indexed by gang id).
    pub finish_times: Vec<Duration>,
    /// Number of token rotations.
    pub switches: u64,
}

#[derive(Debug)]
struct TokenState {
    token: usize,
    live: Vec<bool>,
    cumulated: Vec<u64>,
    weights: Vec<u32>,
    quanta_this_turn: u32,
}

/// A cooperative gang scheduler over real threads.
#[derive(Debug)]
pub struct GangPool {
    quantum_cost: u64,
}

impl GangPool {
    /// Fair (round-robin) gang scheduling with the given cost quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_cost` is zero.
    pub fn fair(quantum_cost: u64) -> Self {
        assert!(quantum_cost > 0, "quantum must be positive");
        GangPool { quantum_cost }
    }

    /// Runs the workloads to completion, one gang of threads each,
    /// cooperatively sharing the simulated device.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or a worker thread panics.
    pub fn run(&self, workloads: Vec<GangWorkload>) -> GangOutcome {
        assert!(!workloads.is_empty(), "no gangs to run");
        let n = workloads.len();
        let state = Arc::new((
            Mutex::new(TokenState {
                token: 0,
                live: vec![true; n],
                cumulated: vec![0; n],
                weights: workloads.iter().map(|w| w.weight).collect(),
                quanta_this_turn: 0,
            }),
            Condvar::new(),
        ));
        let device = Arc::new(Mutex::new(())); // the serial "GPU"
        let switches = Arc::new(AtomicU64::new(0));
        let finish_order = Arc::new(Mutex::new(Vec::<GangId>::new()));
        let start = Instant::now();
        let quantum = self.quantum_cost;

        let mut handles = Vec::new();
        let mut finish_slots: Vec<Arc<Mutex<Duration>>> = Vec::new();
        for (gang_idx, wl) in workloads.into_iter().enumerate() {
            let next_node = Arc::new(AtomicUsize::new(0));
            let done_nodes = Arc::new(AtomicUsize::new(0));
            let finish_slot = Arc::new(Mutex::new(Duration::ZERO));
            finish_slots.push(Arc::clone(&finish_slot));
            for _ in 0..wl.threads {
                let state = Arc::clone(&state);
                let device = Arc::clone(&device);
                let switches = Arc::clone(&switches);
                let finish_order = Arc::clone(&finish_order);
                let next_node = Arc::clone(&next_node);
                let done_nodes = Arc::clone(&done_nodes);
                let finish_slot = Arc::clone(&finish_slot);
                let wl = wl.clone();
                handles.push(std::thread::spawn(move || {
                    loop {
                        let node = next_node.fetch_add(1, Ordering::Relaxed);
                        if node >= wl.nodes as usize {
                            return;
                        }
                        // --- scheduler.yield(): park while not holding the
                        // token (Algorithm 2 line 12).
                        {
                            let (lock, cv) = &*state;
                            let mut s = lock.lock().unwrap();
                            while s.token != gang_idx {
                                s = cv.wait(s).unwrap();
                            }
                        }
                        // --- compute(node): occupy the serial device.
                        {
                            let _gpu = device.lock().unwrap();
                            spin_for(Duration::from_micros(wl.node_cost / 10));
                        }
                        // --- cost accounting + quantum expiry
                        // (Algorithm 2 lines 14-18).
                        {
                            let (lock, cv) = &*state;
                            let mut s = lock.lock().unwrap();
                            s.cumulated[gang_idx] += wl.node_cost;
                            if s.cumulated[gang_idx] >= quantum && s.token == gang_idx {
                                s.cumulated[gang_idx] -= quantum;
                                s.quanta_this_turn += 1;
                                // Weighted turns: keep the token until the
                                // gang has consumed `weight` quanta.
                                if s.quanta_this_turn >= s.weights[gang_idx] {
                                    rotate(&mut s, n);
                                    switches.fetch_add(1, Ordering::Relaxed);
                                    cv.notify_all();
                                }
                            }
                        }
                        // --- completion bookkeeping
                        let done = done_nodes.fetch_add(1, Ordering::AcqRel) + 1;
                        if done == wl.nodes as usize {
                            *finish_slot.lock().unwrap() = start.elapsed();
                            finish_order.lock().unwrap().push(GangId(gang_idx));
                            let (lock, cv) = &*state;
                            let mut s = lock.lock().unwrap();
                            s.live[gang_idx] = false;
                            if s.token == gang_idx {
                                rotate(&mut s, n);
                                switches.fetch_add(1, Ordering::Relaxed);
                            }
                            cv.notify_all();
                        }
                    }
                }));
            }
        }
        for h in handles {
            h.join().expect("gang worker panicked");
        }
        let finish_times = finish_slots.iter().map(|s| *s.lock().unwrap()).collect();
        GangOutcome {
            finish_order: Arc::try_unwrap(finish_order)
                .expect("all workers joined")
                .into_inner()
                .expect("finish-order lock unpoisoned"),
            finish_times,
            switches: switches.load(Ordering::Relaxed),
        }
    }
}

/// Advances the token to the next live gang after the current holder and
/// starts a fresh turn.
fn rotate(s: &mut TokenState, n: usize) {
    s.quanta_this_turn = 0;
    for step in 1..=n {
        let candidate = (s.token + step) % n;
        if s.live[candidate] {
            s.token = candidate;
            return;
        }
    }
    // No live gang: leave the token parked; nobody will wait on it.
}

fn spin_for(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gangs_finish() {
        let pool = GangPool::fair(100);
        let outcome = pool.run(vec![
            GangWorkload::new(20, 20, 2),
            GangWorkload::new(20, 20, 2),
            GangWorkload::new(20, 20, 2),
        ]);
        assert_eq!(outcome.finish_order.len(), 3);
        assert!(outcome.switches >= 3, "switches {}", outcome.switches);
        for t in &outcome.finish_times {
            assert!(*t > Duration::ZERO);
        }
    }

    #[test]
    fn fair_gangs_finish_close_together() {
        let pool = GangPool::fair(200);
        let outcome = pool.run(vec![
            GangWorkload::new(50, 20, 2),
            GangWorkload::new(50, 20, 2),
        ]);
        let a = outcome.finish_times[0].as_secs_f64();
        let b = outcome.finish_times[1].as_secs_f64();
        let ratio = a.max(b) / a.min(b).max(1e-9);
        assert!(ratio < 1.6, "finish ratio {ratio}");
    }

    #[test]
    fn single_gang_runs_without_switch_partners() {
        let pool = GangPool::fair(50);
        let outcome = pool.run(vec![GangWorkload::new(10, 10, 1)]);
        assert_eq!(outcome.finish_order, vec![GangId(0)]);
    }

    #[test]
    fn weighted_gang_finishes_proportionally_sooner() {
        // Real threads under a parallel test harness are noisy: retry a few
        // times and require the weighted gang to win with a visible margin
        // at least once (it wins by ~0.67 in isolation).
        let mut best = f64::MAX;
        for _ in 0..5 {
            let pool = GangPool::fair(100);
            let outcome = pool.run(vec![
                GangWorkload::new(200, 30, 2).with_weight(3),
                GangWorkload::new(200, 30, 2),
            ]);
            let heavy = outcome.finish_times[0].as_secs_f64();
            let light = outcome.finish_times[1].as_secs_f64();
            best = best.min(heavy / light);
            if best < 0.92 {
                return;
            }
        }
        panic!("weighted gang never finished clearly sooner: best ratio {best}");
    }

    #[test]
    #[should_panic(expected = "no gangs")]
    fn empty_run_panics() {
        GangPool::fair(10).run(Vec::new());
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_panics() {
        GangPool::fair(0);
    }
}
