//! The online scheduler: Algorithm 2's `scheduler` object.
//!
//! Owns the token, the per-job cost accounts and the policy. Plugged into
//! the serving engine through the [`serving::Scheduler`] trait, its hooks
//! run at exactly the points Algorithm 2 adds to TF-Serving's loop.

use crate::policy::Policy;
use crate::profile::{ModelProfile, ProfileStore};
use dataflow::NodeId;
use serving::{JobCtx, JobId, RegisterError, Scheduler, SchedulerProbe, SwitchReason, Verdict};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;

/// How quantum expiry is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumMeter {
    /// The paper's mechanism: accumulate profiled node costs and expire at
    /// the threshold `T_j = Q · C_j / D_j`.
    CostAccumulation,
    /// The Figure 19 ablation: expire `Q` of *wall-clock* time after the
    /// token was granted, regardless of actual GPU usage. Demonstrably
    /// fails to equalize GPU durations.
    WallClock,
}

#[derive(Debug)]
struct JobAccount {
    profile: Arc<ModelProfile>,
    threshold: u64,
    cumulated: u64,
    /// Lifetime profiled cost spent by the job, never decremented (unlike
    /// `cumulated`, which resets each quantum). Progress feed for
    /// laxity-aware policies.
    spent: u64,
}

/// Olympian's GPU scheduler.
///
/// See the crate docs for the full picture; in short: `register` admits a
/// job under the policy, `on_gpu_node_done` charges profiled costs and
/// rotates the token at quantum boundaries, `may_run` is the cooperative
/// yield gate the engine consults before every node.
#[derive(Debug)]
pub struct OlympianScheduler {
    profiles: Arc<ProfileStore>,
    policy: Box<dyn Policy>,
    quantum: SimDuration,
    meter: QuantumMeter,
    token: Option<JobId>,
    token_since: SimTime,
    /// Active-job cost accounts, keyed by job id. Linear scan: the set holds
    /// at most one entry per live client, and a per-kernel scan over a few
    /// dense entries beats a hash probe on the cost hot path.
    jobs: Vec<(JobId, JobAccount)>,
    name: String,
    switches: u64,
    /// Token-hold watchdog patience (a multiple of `Q`); `None` disables.
    watchdog: Option<SimDuration>,
    /// Last time the holder made GPU progress (or was granted the token).
    last_progress: SimTime,
    watchdog_revocations: u64,
}

impl OlympianScheduler {
    /// Creates a scheduler with the paper's cost-accumulation meter.
    ///
    /// `quantum` is the target GPU duration `Q` each turn should receive —
    /// normally chosen from Overhead-Q curves via
    /// [`crate::Profiler::q_for_tolerance`].
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(profiles: Arc<ProfileStore>, policy: Box<dyn Policy>, quantum: SimDuration) -> Self {
        assert!(quantum > SimDuration::ZERO, "quantum must be positive");
        let name = format!("olympian-{}", policy.name());
        OlympianScheduler {
            profiles,
            policy,
            quantum,
            meter: QuantumMeter::CostAccumulation,
            token: None,
            token_since: SimTime::ZERO,
            jobs: Vec::new(),
            name,
            switches: 0,
            watchdog: None,
            last_progress: SimTime::ZERO,
            watchdog_revocations: 0,
        }
    }

    /// Arms the token-hold watchdog: when the holder makes no GPU progress
    /// for `multiple × Q`, the token is revoked (the stalled quantum is
    /// spent — charged to the holder like an overflow kernel) so the other
    /// gangs keep making progress under faults.
    ///
    /// # Panics
    ///
    /// Panics if `multiple < 1` — the watchdog must be more patient than a
    /// healthy quantum, or it would revoke honest holders.
    pub fn with_watchdog(mut self, multiple: f64) -> Self {
        assert!(multiple >= 1.0, "watchdog patience must be at least one quantum");
        self.watchdog = Some(self.quantum.mul_f64(multiple));
        self
    }

    /// Times the watchdog has revoked a stalled holder.
    pub fn watchdog_revocations(&self) -> u64 {
        self.watchdog_revocations
    }

    /// Switches to the wall-clock meter (the Figure 19 ablation). Profiles
    /// are still required at registration so the comparison isolates the
    /// metering mechanism, not admission behaviour.
    pub fn with_wall_clock_meter(mut self) -> Self {
        self.meter = QuantumMeter::WallClock;
        self.name = format!("{}-cpu-timer", self.name);
        self
    }

    /// The configured quantum `Q`.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// The active meter.
    pub fn meter(&self) -> QuantumMeter {
        self.meter
    }

    /// Current token holder.
    pub fn token_holder(&self) -> Option<JobId> {
        self.token
    }

    /// Number of token movements so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    fn move_token(&mut self, to: Option<JobId>, now: SimTime, reason: SwitchReason) -> Verdict {
        if to == self.token {
            return Verdict::Unchanged;
        }
        let from = self.token;
        self.token = to;
        self.token_since = now;
        self.last_progress = now;
        self.switches += 1;
        Verdict::Moved { from, to, reason }
    }
}

impl Scheduler for OlympianScheduler {
    fn register(&mut self, job: JobId, ctx: &JobCtx<'_>) -> Result<Verdict, RegisterError> {
        let profile = self
            .profiles
            .resolve(ctx.model_name, ctx.batch)
            .ok_or_else(|| RegisterError::MissingProfile {
                model: ctx.model_name.to_string(),
                batch: ctx.batch,
            })?;
        let threshold = profile.threshold(self.quantum);
        debug_assert!(
            self.jobs.iter().all(|(j, _)| *j != job),
            "job ids are unique per run"
        );
        self.policy
            .bind_deadline(job, ctx.deadline, profile.gpu_duration);
        self.jobs.push((
            job,
            JobAccount {
                profile,
                threshold,
                cumulated: 0,
                spent: 0,
            },
        ));
        let next = self.policy.admit(job, ctx.weight, ctx.priority, self.token);
        Ok(self.move_token(next, ctx.now, SwitchReason::Register))
    }

    fn deregister(&mut self, job: JobId, now: SimTime) -> Verdict {
        if let Some(i) = self.jobs.iter().position(|(j, _)| *j == job) {
            self.jobs.swap_remove(i);
        }
        let next = self.policy.remove(job, self.token);
        self.move_token(next, now, SwitchReason::Deregister)
    }

    fn may_run(&self, job: JobId) -> bool {
        self.token == Some(job)
    }

    fn on_gpu_node_done(&mut self, job: JobId, node: NodeId, now: SimTime) -> Verdict {
        let Some(account) = self
            .jobs
            .iter_mut()
            .find_map(|(j, a)| (*j == job).then_some(a))
        else {
            // A kernel can complete after its job deregistered only through
            // an engine bug; be strict.
            panic!("cost event for unregistered {job}");
        };
        // Overflow rule (Figures 10/15): the cost is charged to the job
        // that launched the kernel even if it no longer holds the token.
        let cost = account.profile.node_cost(node);
        account.cumulated += cost;
        account.spent += cost;
        let ppm = ((account.spent as u128 * 1_000_000)
            / account.profile.total_cost.max(1) as u128)
            .min(1_000_000) as u64;
        self.policy.note_progress(job, ppm);
        if self.token == Some(job) {
            self.last_progress = now;
        }
        if self.meter != QuantumMeter::CostAccumulation {
            return Verdict::Unchanged;
        }
        if account.cumulated < account.threshold {
            return Verdict::Unchanged;
        }
        if self.token != Some(job) {
            // Carry the excess into the job's next turn — its next quantum
            // will be correspondingly shorter (the "deflated quantum" of
            // Figure 15) — but only the holder can end a turn.
            return Verdict::Unchanged;
        }
        // Algorithm 2 lines 16-18.
        account.cumulated -= account.threshold;
        let next = self.policy.quantum_expired(job);
        self.move_token(next, now, SwitchReason::QuantumExpired)
    }

    fn next_timer(&self, _now: SimTime) -> Option<SimTime> {
        self.token?;
        let wall = match self.meter {
            QuantumMeter::WallClock => Some(self.token_since + self.quantum),
            QuantumMeter::CostAccumulation => None,
        };
        let wd = self.watchdog.map(|p| self.last_progress + p);
        match (wall, wd) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    fn on_timer(&mut self, now: SimTime) -> Verdict {
        debug_assert!(
            self.meter == QuantumMeter::WallClock || self.watchdog.is_some(),
            "timer fired with neither wall-clock meter nor watchdog armed"
        );
        let Some(holder) = self.token else {
            return Verdict::Unchanged;
        };
        // The watchdog outranks the wall-clock meter: a holder that made
        // no GPU progress for the whole patience window has its (stalled)
        // quantum charged — spent without clearing any accumulated debt,
        // like an overflow kernel — and loses the token.
        if let Some(patience) = self.watchdog {
            if now >= self.last_progress + patience {
                self.watchdog_revocations += 1;
                let next = self.policy.quantum_expired(holder);
                self.last_progress = now;
                if next == self.token {
                    // Alone in the ring: re-arm and keep waiting.
                    self.token_since = now;
                    return Verdict::Unchanged;
                }
                return self.move_token(next, now, SwitchReason::WatchdogStall);
            }
        }
        if self.meter != QuantumMeter::WallClock {
            return Verdict::Unchanged; // stale watchdog timer
        }
        if now < self.token_since + self.quantum {
            return Verdict::Unchanged; // stale timer
        }
        let next = self.policy.quantum_expired(holder);
        if next == self.token {
            // Same holder keeps the token (alone, or within its weight
            // budget): a fresh wall-clock quantum starts now.
            self.token_since = now;
            return Verdict::Unchanged;
        }
        self.move_token(next, now, SwitchReason::WallClockTimer)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cost_state(&self, job: JobId) -> Option<(u64, u64)> {
        self.jobs
            .iter()
            .find_map(|(j, a)| (*j == job).then_some((a.cumulated, a.threshold)))
    }

    fn telemetry_probe(&self) -> SchedulerProbe {
        SchedulerProbe {
            active_jobs: self.jobs.len() as u32,
            holder_cost: self.token.and_then(|j| self.cost_state(j)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use dataflow::CostModel;

    fn store_with(model: &str, batch: u64, costs: Vec<u64>, d_ns: u64) -> Arc<ProfileStore> {
        let mut s = ProfileStore::new();
        let total = costs.iter().sum();
        s.insert(ModelProfile {
            model: model.into(),
            batch,
            costs: CostModel::from_costs(costs),
            total_cost: total,
            gpu_duration: SimDuration::from_nanos(d_ns),
        });
        Arc::new(s)
    }

    fn ctx(now_ns: u64) -> JobCtx<'static> {
        JobCtx {
            client: serving::ClientId(0),
            model_name: "m",
            batch: 1,
            weight: 1,
            priority: 0,
            device: 0,
            now: SimTime::from_nanos(now_ns),
            deadline: None,
        }
    }

    fn sched(quantum_ns: u64) -> OlympianScheduler {
        // rate = 100 cost / 100 ns = 1.0; threshold = quantum_ns.
        let store = store_with("m", 1, vec![50, 50], 100);
        OlympianScheduler::new(
            store,
            Box::new(RoundRobin::new()),
            SimDuration::from_nanos(quantum_ns),
        )
    }

    #[test]
    fn first_registration_grants_token() {
        let mut s = sched(100);
        let v = s.register(JobId(1), &ctx(0)).unwrap();
        assert_eq!(
            v,
            Verdict::Moved {
                from: None,
                to: Some(JobId(1)),
                reason: SwitchReason::Register
            }
        );
        assert!(s.may_run(JobId(1)));
        assert!(!s.may_run(JobId(2)));
    }

    #[test]
    fn missing_profile_is_rejected() {
        let mut s = sched(100);
        let bad = JobCtx { model_name: "ghost", ..ctx(0) };
        assert!(matches!(
            s.register(JobId(1), &bad),
            Err(RegisterError::MissingProfile { .. })
        ));
    }

    #[test]
    fn threshold_crossing_rotates_token() {
        let mut s = sched(100); // threshold 100 cost units
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        // node 0 costs 50: below threshold
        assert_eq!(
            s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(10)),
            Verdict::Unchanged
        );
        // second 50 reaches it: rotate to job 2
        assert_eq!(
            s.on_gpu_node_done(JobId(1), NodeId::from_index(1), SimTime::from_nanos(20)),
            Verdict::Moved {
                from: Some(JobId(1)),
                to: Some(JobId(2)),
                reason: SwitchReason::QuantumExpired
            }
        );
        assert!(s.may_run(JobId(2)));
    }

    #[test]
    fn overflow_cost_carries_without_rotating() {
        let mut s = sched(100);
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(10));
        s.on_gpu_node_done(JobId(1), NodeId::from_index(1), SimTime::from_nanos(20));
        assert!(s.may_run(JobId(2)));
        // Job 1's overflow kernel completes while job 2 holds the token:
        // charged to job 1, token unmoved.
        assert_eq!(
            s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(30)),
            Verdict::Unchanged
        );
        assert!(s.may_run(JobId(2)));
    }

    #[test]
    fn deregister_of_holder_passes_token() {
        let mut s = sched(100);
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        let v = s.deregister(JobId(1), SimTime::from_nanos(5));
        assert_eq!(
            v,
            Verdict::Moved {
                from: Some(JobId(1)),
                to: Some(JobId(2)),
                reason: SwitchReason::Deregister
            }
        );
        let v = s.deregister(JobId(2), SimTime::from_nanos(6));
        assert_eq!(
            v,
            Verdict::Moved {
                from: Some(JobId(2)),
                to: None,
                reason: SwitchReason::Deregister
            }
        );
        assert_eq!(s.token_holder(), None);
    }

    #[test]
    fn wall_clock_meter_uses_timers_not_costs() {
        let mut s = sched(100).with_wall_clock_meter();
        assert_eq!(s.meter(), QuantumMeter::WallClock);
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        // Costs do not rotate:
        for _ in 0..10 {
            assert_eq!(
                s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(1)),
                Verdict::Unchanged
            );
        }
        // The timer does:
        assert_eq!(s.next_timer(SimTime::ZERO), Some(SimTime::from_nanos(100)));
        let v = s.on_timer(SimTime::from_nanos(100));
        assert_eq!(
            v,
            Verdict::Moved {
                from: Some(JobId(1)),
                to: Some(JobId(2)),
                reason: SwitchReason::WallClockTimer
            }
        );
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut s = sched(100).with_wall_clock_meter();
        s.register(JobId(1), &ctx(0)).unwrap();
        assert_eq!(s.on_timer(SimTime::from_nanos(50)), Verdict::Unchanged);
    }

    #[test]
    fn name_reflects_policy_and_meter() {
        assert_eq!(sched(10).name(), "olympian-fair");
        assert_eq!(sched(10).with_wall_clock_meter().name(), "olympian-fair-cpu-timer");
    }

    #[test]
    fn telemetry_probe_reports_jobs_and_holder_progress() {
        let mut s = sched(100);
        assert_eq!(s.telemetry_probe(), SchedulerProbe::default());
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(10));
        let p = s.telemetry_probe();
        assert_eq!(p.active_jobs, 2);
        assert_eq!(p.holder_cost, Some((50, 100)));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn cost_event_for_unknown_job_panics() {
        let mut s = sched(100);
        s.on_gpu_node_done(JobId(7), NodeId::from_index(0), SimTime::ZERO);
    }

    #[test]
    fn watchdog_revokes_a_stalled_holder() {
        // Q = 100ns, patience = 2Q.
        let mut s = sched(100).with_watchdog(2.0);
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        assert_eq!(s.next_timer(SimTime::ZERO), Some(SimTime::from_nanos(200)));
        // Before the patience window: a stale timer is ignored.
        assert_eq!(s.on_timer(SimTime::from_nanos(150)), Verdict::Unchanged);
        // Past it with no progress: the token rotates.
        assert_eq!(
            s.on_timer(SimTime::from_nanos(200)),
            Verdict::Moved {
                from: Some(JobId(1)),
                to: Some(JobId(2)),
                reason: SwitchReason::WatchdogStall
            }
        );
        assert_eq!(s.watchdog_revocations(), 1);
        assert!(s.may_run(JobId(2)));
    }

    #[test]
    fn holder_progress_rearms_the_watchdog() {
        let mut s = sched(100).with_watchdog(2.0);
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        // Progress at t=150 pushes the deadline to 350.
        s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(150));
        assert_eq!(s.next_timer(SimTime::ZERO), Some(SimTime::from_nanos(350)));
        assert_eq!(s.on_timer(SimTime::from_nanos(200)), Verdict::Unchanged);
        assert_eq!(s.watchdog_revocations(), 0);
        // A non-holder's overflow kernel does not feed the holder's watchdog.
        s.on_gpu_node_done(JobId(2), NodeId::from_index(0), SimTime::from_nanos(300));
        assert_eq!(s.next_timer(SimTime::ZERO), Some(SimTime::from_nanos(350)));
    }

    #[test]
    fn lone_holder_keeps_token_but_watchdog_rearms() {
        let mut s = sched(100).with_watchdog(1.0);
        s.register(JobId(1), &ctx(0)).unwrap();
        assert_eq!(s.on_timer(SimTime::from_nanos(100)), Verdict::Unchanged);
        assert_eq!(s.watchdog_revocations(), 1);
        assert_eq!(s.token_holder(), Some(JobId(1)));
        assert_eq!(s.next_timer(SimTime::ZERO), Some(SimTime::from_nanos(200)));
    }

    #[test]
    #[should_panic(expected = "at least one quantum")]
    fn impatient_watchdog_is_rejected() {
        let _ = sched(100).with_watchdog(0.5);
    }
}
