//! The offline profiler (paper §3.3, Figure 7's "Profiler" box).
//!
//! Runs when the GPU is otherwise idle, once per model and batch size:
//!
//! * an *instrumented* run collects per-node costs through the (simulated)
//!   TensorFlow cost-model API — with realistic measurement noise;
//! * a *clean* exclusive run measures the GPU duration `D_j`;
//! * pairs of instances are raced on stock TF-Serving vs. Olympian across a
//!   sweep of quantum values to produce the **Overhead-Q curve** (Figure 8),
//!   from which an operator's overhead tolerance picks the smallest safe `Q`;
//! * profiles at a few batch sizes are generalized to any batch by
//!   per-node **linear regression** ([`LinearCostModel`], Figure 20).

use crate::policy::RoundRobin;
use crate::profile::{ModelProfile, ProfileStore};
use crate::scheduler::OlympianScheduler;
use dataflow::CostModel;
use metrics::linear_fit;
use models::LoadedModel;
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
use simtime::{DetRng, SimDuration};
use std::fmt;
use std::sync::Arc;

/// Overhead as a function of the quantum `Q` for one `(model, batch)` —
/// the paper's Figure 8 series.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadQCurve {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: u64,
    /// `(Q, overhead)` points, ascending in `Q`. Overhead is the relative
    /// slowdown of a two-instance race under Olympian vs. stock TF-Serving.
    pub points: Vec<(SimDuration, f64)>,
}

impl OverheadQCurve {
    /// The smallest `Q` whose (linearly interpolated) overhead is at most
    /// `tolerance`, or `None` if even the largest measured `Q` exceeds it.
    ///
    /// # Panics
    ///
    /// Panics if the curve is empty or `tolerance` is negative.
    pub fn q_at_tolerance(&self, tolerance: f64) -> Option<SimDuration> {
        assert!(!self.points.is_empty(), "empty Overhead-Q curve");
        assert!(tolerance >= 0.0, "negative tolerance");
        let mut prev: Option<(SimDuration, f64)> = None;
        for &(q, ov) in &self.points {
            if ov <= tolerance {
                return Some(match prev {
                    // Interpolate between the bracketing points.
                    Some((pq, pov)) if pov > tolerance => {
                        let frac = (pov - tolerance) / (pov - ov);
                        let span = q.as_nanos().saturating_sub(pq.as_nanos()) as f64;
                        pq + SimDuration::from_nanos((span * frac).round() as u64)
                    }
                    _ => q,
                });
            }
            prev = Some((q, ov));
        }
        None
    }
}

/// Error from linear-model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Need at least two profiles at distinct batch sizes.
    NotEnoughProfiles,
    /// Profiles mix different models or node counts.
    Inconsistent,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughProfiles => {
                write!(f, "linear cost model needs two profiles at distinct batch sizes")
            }
            FitError::Inconsistent => write!(f, "profiles cover different models or graphs"),
        }
    }
}

impl std::error::Error for FitError {}

/// Per-node linear batch-size model: profile a couple of common batch sizes,
/// predict the cost table (and `D_j`) for any other (paper §4.4, Figure 20).
#[derive(Debug, Clone)]
pub struct LinearCostModel {
    model: String,
    node_fits: Vec<(f64, f64)>,
    duration_fit: (f64, f64),
}

impl LinearCostModel {
    /// Fits per-node cost lines and a duration line across profiles of the
    /// same model at different batch sizes.
    ///
    /// # Errors
    ///
    /// * [`FitError::NotEnoughProfiles`] with fewer than two distinct batches.
    /// * [`FitError::Inconsistent`] when profiles mix models or graphs.
    pub fn fit(profiles: &[&ModelProfile]) -> Result<LinearCostModel, FitError> {
        if profiles.len() < 2 {
            return Err(FitError::NotEnoughProfiles);
        }
        let model = profiles[0].model.clone();
        let nodes = profiles[0].costs.len();
        let mut batches: Vec<u64> = profiles.iter().map(|p| p.batch).collect();
        batches.sort_unstable();
        batches.dedup();
        if batches.len() < 2 {
            return Err(FitError::NotEnoughProfiles);
        }
        if profiles.iter().any(|p| p.model != model || p.costs.len() != nodes) {
            return Err(FitError::Inconsistent);
        }
        let node_fits = (0..nodes)
            .map(|i| {
                let pts: Vec<(f64, f64)> = profiles
                    .iter()
                    .map(|p| {
                        (
                            p.batch as f64,
                            p.costs.cost(dataflow::NodeId::from_index(i)) as f64,
                        )
                    })
                    .collect();
                linear_fit(&pts)
            })
            .collect();
        let d_pts: Vec<(f64, f64)> = profiles
            .iter()
            .map(|p| (p.batch as f64, p.gpu_duration.as_nanos() as f64))
            .collect();
        Ok(LinearCostModel {
            model,
            node_fits,
            duration_fit: linear_fit(&d_pts),
        })
    }

    /// The model this fit covers.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Predicts the full profile at `batch`.
    pub fn predict(&self, batch: u64) -> ModelProfile {
        let b = batch as f64;
        let costs: Vec<u64> = self
            .node_fits
            .iter()
            .map(|&(a, m)| (a + m * b).round().max(0.0) as u64)
            .collect();
        let total_cost = costs.iter().sum();
        let (da, dm) = self.duration_fit;
        ModelProfile {
            model: self.model.clone(),
            batch,
            costs: CostModel::from_costs(costs),
            total_cost,
            gpu_duration: SimDuration::from_nanos((da + dm * b).round().max(1.0) as u64),
        }
    }
}

/// The offline profiler.
#[derive(Debug, Clone)]
pub struct Profiler {
    cfg: EngineConfig,
    cost_noise: f64,
    pair_batches: u32,
}

impl Profiler {
    /// Creates a profiler that profiles under (a quiesced copy of) `cfg` —
    /// the paper profiles "when the GPU is idle", so workload noise sources
    /// are disabled.
    pub fn new(cfg: &EngineConfig) -> Self {
        Profiler {
            cfg: cfg.quiescent(),
            cost_noise: 0.025,
            pair_batches: 5,
        }
    }

    /// Sets the relative σ of per-node cost measurement noise (default
    /// 2.5%, matching the paper's observed cost stability).
    pub fn with_cost_noise(mut self, noise: f64) -> Self {
        assert!(noise >= 0.0, "negative noise");
        self.cost_noise = noise;
        self
    }

    /// Sets how many batches each racer submits in Overhead-Q measurements.
    pub fn with_pair_batches(mut self, batches: u32) -> Self {
        assert!(batches > 0, "need at least one batch");
        self.pair_batches = batches;
        self
    }

    /// Profiles one `(model, batch)`: an instrumented run for per-node costs
    /// plus a clean exclusive run for the GPU duration `D_j`.
    pub fn profile(&self, model: &LoadedModel) -> ModelProfile {
        // Cost pass: the cost-model API reports per-node costs with
        // measurement noise.
        let mut rng = DetRng::new(self.cfg.seed ^ hash_name(model.name()) ^ model.batch());
        let exact = CostModel::exact(model.graph());
        // A profiling run's measurements share run conditions (clock state,
        // contention), so noise has a common run-level component on top of
        // the per-node component; this makes the *total* cost vary ~σ across
        // profiling runs, as the paper measures (§4.4).
        let run_factor = if self.cost_noise > 0.0 {
            rng.lognormal(0.0, self.cost_noise)
        } else {
            1.0
        };
        let costs: Vec<u64> = exact
            .iter()
            .map(|(_, c)| {
                if c == 0 {
                    0
                } else {
                    ((c as f64) * run_factor * rng.jitter(self.cost_noise))
                        .round()
                        .max(1.0) as u64
                }
            })
            .collect();
        let costs = CostModel::from_costs(costs);
        let total_cost = costs.total();

        // Duration pass: one exclusive, uninstrumented run.
        let report = run_experiment(
            &self.cfg,
            vec![ClientSpec::new(model.clone(), 1)],
            &mut FifoScheduler::new(),
        );
        assert!(report.all_finished(), "profiling run must complete");
        let gpu_duration = report.clients[0].run_gpu_durations[0];
        ModelProfile {
            model: model.name().to_string(),
            batch: model.batch(),
            costs,
            total_cost,
            gpu_duration,
        }
    }

    /// Measures the Figure 6 comparison: single-job finish time with the
    /// online cost profiler off vs. on. Returns `(off_secs, on_secs)`.
    pub fn online_profiler_cost(&self, model: &LoadedModel, inflation: f64) -> (f64, f64) {
        let off = run_experiment(
            &self.cfg,
            vec![ClientSpec::new(model.clone(), 1)],
            &mut FifoScheduler::new(),
        );
        let on = run_experiment(
            &self.cfg.with_online_profiling(inflation),
            vec![ClientSpec::new(model.clone(), 1)],
            &mut FifoScheduler::new(),
        );
        (
            off.makespan.as_secs_f64(),
            on.makespan.as_secs_f64(),
        )
    }

    /// Measures the Overhead-Q curve for one model (paper §3.3): two
    /// concurrent instances raced on stock TF-Serving (case *a*) and on
    /// Olympian fair sharing with each candidate `Q` (case *b*); overhead is
    /// `(finish_b − finish_a) / finish_a`.
    ///
    /// # Panics
    ///
    /// Panics if `qs` is empty or either racing run fails to finish.
    pub fn overhead_q_curve(&self, model: &LoadedModel, qs: &[SimDuration]) -> OverheadQCurve {
        assert!(!qs.is_empty(), "need at least one candidate quantum");
        let clients =
            || vec![ClientSpec::new(model.clone(), self.pair_batches); 2];
        let base = run_experiment(&self.cfg, clients(), &mut FifoScheduler::new());
        assert!(base.all_finished(), "baseline race must complete");
        let base_finish = base.makespan.as_secs_f64();

        let profile = self.profile(model);
        let mut store = ProfileStore::new();
        store.insert(profile);
        let store = Arc::new(store);

        // Each candidate race is an independent deterministic simulation, so
        // the grid is swept in parallel; `par_map` returns results in grid
        // order, keeping the curve byte-identical to a serial sweep.
        let mut points: Vec<(SimDuration, f64)> = simpar::par_map(qs, |_, &q| {
            let mut sched =
                OlympianScheduler::new(Arc::clone(&store), Box::new(RoundRobin::new()), q);
            let run = run_experiment(&self.cfg, clients(), &mut sched);
            assert!(run.all_finished(), "olympian race must complete");
            let overhead = (run.makespan.as_secs_f64() - base_finish) / base_finish;
            (q, overhead)
        });
        points.sort_by_key(|&(q, _)| q);
        OverheadQCurve {
            model: model.name().to_string(),
            batch: model.batch(),
            points,
        }
    }

    /// Picks the quantum for a workload: the smallest `Q` meeting
    /// `tolerance` on *every* curve — i.e. the largest of the per-model
    /// answers (paper §3.3). `None` if any model cannot meet the tolerance.
    pub fn q_for_tolerance(
        curves: &[OverheadQCurve],
        tolerance: f64,
    ) -> Option<SimDuration> {
        curves
            .iter()
            .map(|c| c.q_at_tolerance(tolerance))
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .max()
    }
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_measures_cost_and_duration() {
        let cfg = EngineConfig::default();
        let m = models::mini::small(4);
        let p = Profiler::new(&cfg).profile(&m);
        // 64 GPU nodes × 25 µs; device jitter ±1%.
        let d = p.gpu_duration.as_micros_f64();
        assert!((d - 1600.0).abs() < 60.0, "D = {d} µs");
        let exact = m.graph().total_true_cost() as f64;
        let rel = (p.total_cost as f64 - exact).abs() / exact;
        assert!(rel < 0.02, "cost error {rel}");
    }

    #[test]
    fn profile_is_deterministic() {
        let cfg = EngineConfig::default();
        let m = models::mini::small(4);
        let prof = Profiler::new(&cfg);
        assert_eq!(prof.profile(&m), prof.profile(&m));
    }

    #[test]
    fn overhead_curve_decreases_with_q() {
        let cfg = EngineConfig::default();
        let m = models::mini::small(4);
        let qs = [
            SimDuration::from_micros(50),
            SimDuration::from_micros(200),
            SimDuration::from_micros(800),
        ];
        let curve = Profiler::new(&cfg).overhead_q_curve(&m, &qs);
        assert_eq!(curve.points.len(), 3);
        let first = curve.points[0].1;
        let last = curve.points[2].1;
        assert!(first > last, "overhead should fall with Q: {first} vs {last}");
    }

    #[test]
    fn q_at_tolerance_interpolates() {
        let curve = OverheadQCurve {
            model: "m".into(),
            batch: 1,
            points: vec![
                (SimDuration::from_micros(100), 0.10),
                (SimDuration::from_micros(200), 0.02),
            ],
        };
        // tolerance 6% lies halfway between the points.
        let q = curve.q_at_tolerance(0.06).unwrap();
        assert_eq!(q, SimDuration::from_micros(150));
        // tolerance below every point: None.
        assert_eq!(curve.q_at_tolerance(0.001), None);
        // tolerance above the first point: the smallest measured Q.
        assert_eq!(
            curve.q_at_tolerance(0.5),
            Some(SimDuration::from_micros(100))
        );
    }

    #[test]
    fn q_for_tolerance_takes_max_across_models() {
        let a = OverheadQCurve {
            model: "a".into(),
            batch: 1,
            points: vec![(SimDuration::from_micros(100), 0.01)],
        };
        let b = OverheadQCurve {
            model: "b".into(),
            batch: 1,
            points: vec![(SimDuration::from_micros(400), 0.01)],
        };
        assert_eq!(
            Profiler::q_for_tolerance(&[a, b], 0.02),
            Some(SimDuration::from_micros(400))
        );
    }

    #[test]
    fn linear_model_recovers_affine_costs() {
        let mk = |batch: u64| ModelProfile {
            model: "m".into(),
            batch,
            costs: CostModel::from_costs(vec![10 + 2 * batch, 5 + batch]),
            total_cost: 15 + 3 * batch,
            gpu_duration: SimDuration::from_nanos(100 + 10 * batch),
        };
        let p50 = mk(50);
        let p100 = mk(100);
        let lin = LinearCostModel::fit(&[&p50, &p100]).unwrap();
        let pred = lin.predict(75);
        assert_eq!(pred.costs.cost(dataflow::NodeId::from_index(0)), 160);
        assert_eq!(pred.costs.cost(dataflow::NodeId::from_index(1)), 80);
        assert_eq!(pred.gpu_duration, SimDuration::from_nanos(850));
        assert_eq!(pred.total_cost, 240);
    }

    #[test]
    fn linear_model_rejects_single_batch() {
        let p = ModelProfile {
            model: "m".into(),
            batch: 10,
            costs: CostModel::from_costs(vec![1]),
            total_cost: 1,
            gpu_duration: SimDuration::from_nanos(1),
        };
        assert_eq!(
            LinearCostModel::fit(&[&p, &p]).unwrap_err(),
            FitError::NotEnoughProfiles
        );
        assert_eq!(LinearCostModel::fit(&[&p]).unwrap_err(), FitError::NotEnoughProfiles);
    }

    #[test]
    fn linear_model_rejects_mixed_models() {
        let mk = |model: &str, batch: u64| ModelProfile {
            model: model.into(),
            batch,
            costs: CostModel::from_costs(vec![1]),
            total_cost: 1,
            gpu_duration: SimDuration::from_nanos(1),
        };
        let a = mk("a", 10);
        let b = mk("b", 20);
        assert_eq!(LinearCostModel::fit(&[&a, &b]).unwrap_err(), FitError::Inconsistent);
    }

    #[test]
    fn online_profiler_cost_shows_inflation() {
        let cfg = EngineConfig::default();
        let m = models::mini::small(2);
        let (off, on) = Profiler::new(&cfg).online_profiler_cost(&m, 0.25);
        let ratio = on / off;
        assert!(ratio > 1.2 && ratio < 1.3, "ratio {ratio}");
    }
}
