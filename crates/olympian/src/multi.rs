//! Multi-GPU scheduling — the paper's §7 future work ("support multiple
//! GPUs within a single server").
//!
//! The serving engine places each client's model instance on one device and
//! reports that device in [`JobCtx::device`]. [`MultiGpuScheduler`] keeps an
//! independent [`OlympianScheduler`] — token, cost accounts, policy ring —
//! per device, routing every hook by the job's placement. GPUs never share
//! a token: temporal multiplexing is a per-device concern, so fairness and
//! quanta behave on each GPU exactly as they do on a single-GPU server.
//!
//! ```
//! use olympian::{MultiGpuScheduler, Profiler, ProfileStore, RoundRobin};
//! use serving::{run_experiment, ClientSpec, EngineConfig};
//! use simtime::SimDuration;
//! use std::sync::Arc;
//!
//! let cfg = EngineConfig::default().with_device_count(2);
//! let model = models::mini::small(4);
//! let mut store = ProfileStore::new();
//! store.insert(Profiler::new(&cfg).profile(&model));
//! let mut sched = MultiGpuScheduler::new(
//!     Arc::new(store),
//!     || Box::new(RoundRobin::new()),
//!     SimDuration::from_micros(200),
//! );
//! let report = run_experiment(&cfg, vec![ClientSpec::new(model, 2); 4], &mut sched);
//! assert!(report.all_finished());
//! assert_eq!(report.device_utilizations.len(), 2);
//! ```

use crate::policy::Policy;
use crate::profile::ProfileStore;
use crate::scheduler::OlympianScheduler;
use dataflow::NodeId;
use serving::{JobCtx, JobId, RegisterError, Scheduler, SchedulerProbe, Verdict};
use simtime::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One Olympian token scheduler per GPU.
pub struct MultiGpuScheduler {
    profiles: Arc<ProfileStore>,
    policy_factory: Box<dyn Fn() -> Box<dyn Policy> + Send>,
    quantum: SimDuration,
    per_device: HashMap<u32, OlympianScheduler>,
    job_device: HashMap<JobId, u32>,
    name: String,
}

impl fmt::Debug for MultiGpuScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiGpuScheduler")
            .field("quantum", &self.quantum)
            .field("devices", &self.per_device.len())
            .field("jobs", &self.job_device.len())
            .finish()
    }
}

impl MultiGpuScheduler {
    /// Creates a scheduler that spawns one policy instance (from
    /// `policy_factory`) per device on first use.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero (checked on first device creation).
    pub fn new(
        profiles: Arc<ProfileStore>,
        policy_factory: impl Fn() -> Box<dyn Policy> + Send + 'static,
        quantum: SimDuration,
    ) -> Self {
        assert!(quantum > SimDuration::ZERO, "quantum must be positive");
        let name = format!("olympian-multi-{}", policy_factory().name());
        MultiGpuScheduler {
            profiles,
            policy_factory: Box::new(policy_factory),
            quantum,
            per_device: HashMap::new(),
            job_device: HashMap::new(),
            name,
        }
    }

    /// Number of devices that have seen at least one job.
    pub fn active_devices(&self) -> usize {
        self.per_device.len()
    }

    fn sub_for(&mut self, device: u32) -> &mut OlympianScheduler {
        self.per_device.entry(device).or_insert_with(|| {
            OlympianScheduler::new(
                Arc::clone(&self.profiles),
                (self.policy_factory)(),
                self.quantum,
            )
        })
    }
}

impl Scheduler for MultiGpuScheduler {
    fn register(&mut self, job: JobId, ctx: &JobCtx<'_>) -> Result<Verdict, RegisterError> {
        let verdict = self.sub_for(ctx.device).register(job, ctx)?;
        self.job_device.insert(job, ctx.device);
        Ok(verdict)
    }

    fn deregister(&mut self, job: JobId, now: SimTime) -> Verdict {
        let Some(device) = self.job_device.remove(&job) else {
            return Verdict::Unchanged;
        };
        self.sub_for(device).deregister(job, now)
    }

    fn may_run(&self, job: JobId) -> bool {
        match self.job_device.get(&job) {
            Some(device) => self
                .per_device
                .get(device)
                .is_some_and(|s| s.may_run(job)),
            None => false,
        }
    }

    fn on_gpu_node_done(&mut self, job: JobId, node: NodeId, now: SimTime) -> Verdict {
        let device = *self
            .job_device
            .get(&job)
            .expect("cost event for unregistered job");
        self.sub_for(device).on_gpu_node_done(job, node, now)
    }

    fn next_timer(&self, now: SimTime) -> Option<SimTime> {
        self.per_device
            .values()
            .filter_map(|s| s.next_timer(now))
            .min()
    }

    fn on_timer(&mut self, now: SimTime) -> Verdict {
        // Deliver to every sub-scheduler; stale timers are no-ops. At most
        // one can legitimately fire per instant under distinct quanta, and
        // the engine treats multiple `Moved`s across calls correctly anyway.
        let mut verdict = Verdict::Unchanged;
        let mut devices: Vec<u32> = self.per_device.keys().copied().collect();
        devices.sort_unstable();
        for d in devices {
            let v = self
                .per_device
                .get_mut(&d)
                .expect("device listed")
                .on_timer(now);
            if v != Verdict::Unchanged {
                verdict = v;
            }
        }
        verdict
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn cost_state(&self, job: JobId) -> Option<(u64, u64)> {
        self.job_device
            .get(&job)
            .and_then(|d| self.per_device.get(d))
            .and_then(|s| s.cost_state(job))
    }

    fn telemetry_probe(&self) -> SchedulerProbe {
        // Jobs sum across devices; holder progress comes from the
        // lowest-numbered device with a token holder (deterministic under
        // HashMap iteration, and "the" holder on single-GPU servers).
        let mut devices: Vec<&u32> = self.per_device.keys().collect();
        devices.sort_unstable();
        SchedulerProbe {
            active_jobs: self.job_device.len() as u32,
            holder_cost: devices
                .into_iter()
                .find_map(|d| self.per_device[d].telemetry_probe().holder_cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use crate::profile::ModelProfile;
    use dataflow::CostModel;
    use serving::{ClientId, SwitchReason};

    fn store() -> Arc<ProfileStore> {
        let mut s = ProfileStore::new();
        s.insert(ModelProfile {
            model: "m".into(),
            batch: 1,
            costs: CostModel::from_costs(vec![60, 60]),
            total_cost: 120,
            gpu_duration: SimDuration::from_nanos(120),
        });
        Arc::new(s)
    }

    fn ctx(device: u32) -> JobCtx<'static> {
        JobCtx {
            client: ClientId(0),
            model_name: "m",
            batch: 1,
            weight: 1,
            priority: 0,
            device,
            now: SimTime::ZERO,
            deadline: None,
        }
    }

    fn sched() -> MultiGpuScheduler {
        MultiGpuScheduler::new(store(), || Box::new(RoundRobin::new()), SimDuration::from_nanos(100))
    }

    #[test]
    fn tokens_are_independent_per_device() {
        let mut s = sched();
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(1)).unwrap();
        // Both hold their device's token simultaneously.
        assert!(s.may_run(JobId(1)));
        assert!(s.may_run(JobId(2)));
        assert_eq!(s.active_devices(), 2);
    }

    #[test]
    fn rotation_stays_within_a_device() {
        let mut s = sched();
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(0)).unwrap();
        s.register(JobId(3), &ctx(1)).unwrap();
        // Job 1 crosses its threshold: token rotates to job 2 on device 0;
        // device 1's holder is untouched.
        s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(1));
        let v = s.on_gpu_node_done(JobId(1), NodeId::from_index(1), SimTime::from_nanos(2));
        assert_eq!(
            v,
            Verdict::Moved {
                from: Some(JobId(1)),
                to: Some(JobId(2)),
                reason: SwitchReason::QuantumExpired
            }
        );
        assert!(s.may_run(JobId(2)));
        assert!(s.may_run(JobId(3)));
        assert!(!s.may_run(JobId(1)));
    }

    #[test]
    fn deregister_routes_to_owning_device() {
        let mut s = sched();
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(1)).unwrap();
        assert_eq!(
            s.deregister(JobId(1), SimTime::from_nanos(5)),
            Verdict::Moved {
                from: Some(JobId(1)),
                to: None,
                reason: SwitchReason::Deregister
            }
        );
        assert!(s.may_run(JobId(2)), "other device unaffected");
        assert_eq!(s.deregister(JobId(99), SimTime::ZERO), Verdict::Unchanged);
    }

    #[test]
    fn unknown_job_may_not_run() {
        let s = sched();
        assert!(!s.may_run(JobId(42)));
    }

    #[test]
    fn telemetry_probe_sums_jobs_across_devices() {
        let mut s = sched();
        assert_eq!(s.telemetry_probe(), SchedulerProbe::default());
        s.register(JobId(1), &ctx(0)).unwrap();
        s.register(JobId(2), &ctx(1)).unwrap();
        s.on_gpu_node_done(JobId(1), NodeId::from_index(0), SimTime::from_nanos(1));
        let p = s.telemetry_probe();
        assert_eq!(p.active_jobs, 2);
        // Device 0's holder: one 60-cost node against the 100-unit threshold.
        assert_eq!(p.holder_cost, Some((60, 100)));
    }
}
