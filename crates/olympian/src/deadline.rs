//! Deadline-aware token hand-off: EDF and least-laxity policies (PR 9).
//!
//! The paper's policies share capacity fairly; neither knows a run has a
//! deadline. [`DeadlinePolicy`] orders token grants by urgency instead:
//!
//! * **EDF** — the registered job with the earliest absolute deadline holds
//!   the token until it completes (classic earliest-deadline-first, optimal
//!   for meeting feasible deadline sets on one resource);
//! * **least laxity** — orders by `deadline − remaining work`, where
//!   remaining work is the job's bound-profile GPU duration scaled by its
//!   unfinished profiled-cost fraction (fed through
//!   [`Policy::note_progress`]). A job that has barely progressed sorts
//!   more urgent than EDF alone would rank it.
//!
//! Both orderings are invariant under a uniform shift of "now", so the
//! policy needs no clock: absolute deadline nanoseconds (from
//! [`Policy::bind_deadline`]) compare directly. Deadline-less jobs sort
//! last (key `u64::MAX`) and ties break by registration order, so decisions
//! are byte-deterministic. Preemption stays at quantum granularity — the
//! scheduler consults the policy only at admission, removal and quantum
//! expiry, like every other policy — and the `OlympianScheduler` dedupes a
//! same-holder verdict to `Unchanged`, so an EDF holder keeping the token
//! across expiries costs nothing.

use crate::policy::Policy;
use serving::JobId;
use simtime::{SimDuration, SimTime};

/// Which urgency key [`DeadlinePolicy`] sorts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineMode {
    /// Absolute deadline (earliest deadline first).
    Edf,
    /// Deadline minus estimated remaining GPU work (least laxity first).
    LeastLaxity,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    job: JobId,
    /// Absolute deadline, ns (`u64::MAX` for deadline-less jobs).
    deadline_ns: u64,
    /// Expected whole-run GPU duration from the bound profile, ns.
    expected_ns: u64,
    /// Profiled-cost progress, parts-per-million of total cost.
    completed_ppm: u64,
}

/// The EDF / least-laxity policy. Registered jobs live in a small
/// registration-ordered vector (job counts per device are tens, not
/// thousands); every decision is a linear min-scan with the registration
/// index as the tie-break.
#[derive(Debug)]
pub struct DeadlinePolicy {
    mode: DeadlineMode,
    entries: Vec<Entry>,
}

impl DeadlinePolicy {
    /// Earliest-deadline-first ordering.
    pub fn edf() -> DeadlinePolicy {
        DeadlinePolicy { mode: DeadlineMode::Edf, entries: Vec::new() }
    }

    /// Least-laxity-first ordering.
    pub fn laxity() -> DeadlinePolicy {
        DeadlinePolicy { mode: DeadlineMode::LeastLaxity, entries: Vec::new() }
    }

    /// The configured ordering.
    pub fn mode(&self) -> DeadlineMode {
        self.mode
    }

    fn key(&self, e: &Entry) -> u64 {
        match self.mode {
            DeadlineMode::Edf => e.deadline_ns,
            DeadlineMode::LeastLaxity => {
                if e.deadline_ns == u64::MAX {
                    return u64::MAX;
                }
                let left_ppm = 1_000_000 - e.completed_ppm.min(1_000_000);
                let remaining =
                    ((e.expected_ns as u128 * left_ppm as u128) / 1_000_000) as u64;
                // Already-infeasible jobs (remaining > deadline) collapse
                // to key 0; the registration-order tie-break keeps the
                // ordering deterministic among them.
                e.deadline_ns.saturating_sub(remaining)
            }
        }
    }

    /// The most urgent registered job (min key, registration order on
    /// ties).
    fn best(&self) -> Option<JobId> {
        self.entries
            .iter()
            .enumerate()
            .min_by_key(|(i, e)| (self.key(e), *i))
            .map(|(_, e)| e.job)
    }

    fn upsert(&mut self, job: JobId) -> &mut Entry {
        if let Some(i) = self.entries.iter().position(|e| e.job == job) {
            return &mut self.entries[i];
        }
        self.entries.push(Entry {
            job,
            deadline_ns: u64::MAX,
            expected_ns: 0,
            completed_ppm: 0,
        });
        self.entries.last_mut().expect("just pushed")
    }
}

impl Policy for DeadlinePolicy {
    fn admit(
        &mut self,
        job: JobId,
        _weight: u32,
        _priority: u32,
        current: Option<JobId>,
    ) -> Option<JobId> {
        self.upsert(job);
        // No mid-quantum preemption: a more urgent arrival waits for the
        // holder's next expiry, like every other policy here.
        current.or_else(|| self.best())
    }

    fn remove(&mut self, job: JobId, current: Option<JobId>) -> Option<JobId> {
        self.entries.retain(|e| e.job != job);
        if current == Some(job) {
            self.best()
        } else {
            current
        }
    }

    fn quantum_expired(&mut self, _holder: JobId) -> Option<JobId> {
        // The most urgent job holds until it completes or something more
        // urgent registers; the scheduler dedupes a same-holder answer.
        self.best()
    }

    fn name(&self) -> &str {
        match self.mode {
            DeadlineMode::Edf => "edf",
            DeadlineMode::LeastLaxity => "laxity",
        }
    }

    fn bind_deadline(
        &mut self,
        job: JobId,
        deadline: Option<SimTime>,
        expected_gpu: SimDuration,
    ) {
        let e = self.upsert(job);
        e.deadline_ns = deadline.map_or(u64::MAX, |d| d.as_nanos());
        e.expected_ns = expected_gpu.as_nanos();
    }

    fn note_progress(&mut self, job: JobId, completed_ppm: u64) {
        if let Some(i) = self.entries.iter().position(|e| e.job == job) {
            self.entries[i].completed_ppm = completed_ppm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn bind_and_admit(
        p: &mut DeadlinePolicy,
        job: JobId,
        deadline: Option<SimTime>,
        expected: SimDuration,
        current: Option<JobId>,
    ) -> Option<JobId> {
        p.bind_deadline(job, deadline, expected);
        p.admit(job, 1, 0, current)
    }

    #[test]
    fn edf_grants_earliest_deadline() {
        let mut p = DeadlinePolicy::edf();
        assert_eq!(bind_and_admit(&mut p, j(1), Some(t(300)), us(50), None), Some(j(1)));
        // Later deadline arrives: holder keeps its quantum.
        assert_eq!(bind_and_admit(&mut p, j(2), Some(t(900)), us(50), Some(j(1))), Some(j(1)));
        // Earlier deadline arrives: takes over at the next expiry.
        assert_eq!(bind_and_admit(&mut p, j(3), Some(t(100)), us(50), Some(j(1))), Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(3)));
        // j3 keeps the token until it deregisters.
        assert_eq!(p.quantum_expired(j(3)), Some(j(3)));
        assert_eq!(p.remove(j(3), Some(j(3))), Some(j(1)));
        assert_eq!(p.remove(j(1), Some(j(1))), Some(j(2)));
        assert_eq!(p.remove(j(2), Some(j(2))), None);
    }

    #[test]
    fn deadline_less_jobs_sort_last_with_registration_tiebreak() {
        let mut p = DeadlinePolicy::edf();
        bind_and_admit(&mut p, j(5), None, us(10), None);
        bind_and_admit(&mut p, j(6), None, us(10), Some(j(5)));
        // Both u64::MAX keys: earliest registered wins.
        assert_eq!(p.quantum_expired(j(5)), Some(j(5)));
        // Any real deadline beats deadline-less jobs.
        bind_and_admit(&mut p, j(7), Some(t(1_000_000)), us(10), Some(j(5)));
        assert_eq!(p.quantum_expired(j(5)), Some(j(7)));
    }

    #[test]
    fn laxity_prefers_less_progressed_work() {
        let mut p = DeadlinePolicy::laxity();
        // Same deadline, same expected work; j2 is 80% done, j1 untouched:
        // j1's laxity (deadline − full work) is smaller → more urgent.
        bind_and_admit(&mut p, j(1), Some(t(1_000)), us(400), None);
        bind_and_admit(&mut p, j(2), Some(t(1_000)), us(400), Some(j(1)));
        p.note_progress(j(2), 800_000);
        assert_eq!(p.quantum_expired(j(2)), Some(j(1)));
        // j1 progresses past j2's remaining work: urgency flips.
        p.note_progress(j(1), 950_000);
        assert_eq!(p.quantum_expired(j(1)), Some(j(2)));
    }

    #[test]
    fn laxity_orders_differently_from_edf_when_work_differs() {
        // j1: deadline 500µs, 400µs of work → laxity 100.
        // j2: deadline 300µs, 20µs of work → laxity 280.
        // EDF would pick j2 (earlier deadline); laxity picks j1.
        let mut laxity = DeadlinePolicy::laxity();
        bind_and_admit(&mut laxity, j(1), Some(t(500)), us(400), None);
        bind_and_admit(&mut laxity, j(2), Some(t(300)), us(20), Some(j(1)));
        assert_eq!(laxity.quantum_expired(j(1)), Some(j(1)));
        let mut edf = DeadlinePolicy::edf();
        bind_and_admit(&mut edf, j(1), Some(t(500)), us(400), None);
        bind_and_admit(&mut edf, j(2), Some(t(300)), us(20), Some(j(1)));
        assert_eq!(edf.quantum_expired(j(1)), Some(j(2)));
    }

    #[test]
    fn negative_laxity_saturates_deterministically() {
        let mut p = DeadlinePolicy::laxity();
        // Both infeasible (remaining > deadline): keys collapse to 0 and
        // registration order breaks the tie.
        bind_and_admit(&mut p, j(1), Some(t(10)), us(500), None);
        bind_and_admit(&mut p, j(2), Some(t(5)), us(900), Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(1)));
    }

    #[test]
    fn removal_of_bystander_keeps_holder() {
        let mut p = DeadlinePolicy::edf();
        bind_and_admit(&mut p, j(1), Some(t(100)), us(10), None);
        bind_and_admit(&mut p, j(2), Some(t(200)), us(10), Some(j(1)));
        assert_eq!(p.remove(j(2), Some(j(1))), Some(j(1)));
        assert_eq!(p.quantum_expired(j(1)), Some(j(1)));
    }

    #[test]
    fn names_match_cli_spellings() {
        assert_eq!(DeadlinePolicy::edf().name(), "edf");
        assert_eq!(DeadlinePolicy::laxity().name(), "laxity");
        assert_eq!(DeadlinePolicy::laxity().mode(), DeadlineMode::LeastLaxity);
    }

    #[test]
    fn empty_policy_returns_none() {
        let mut p = DeadlinePolicy::edf();
        assert_eq!(p.quantum_expired(j(9)), None);
    }
}
