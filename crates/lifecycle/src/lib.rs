#![deny(missing_docs)]

//! The model-lifecycle manager: a dynamic model plane for the serving
//! engine.
//!
//! Olympian extends TF-Serving, whose production core is the
//! Source→Loader→Manager version pipeline: models are *named*, each name
//! carries monotonically increasing *versions*, and an aspired-versions
//! state machine loads, warms, serves, drains and unloads them under a
//! hard device-memory budget. This crate reproduces that plane on the
//! simulator's virtual clock, deterministically:
//!
//! * a **versioned registry** ([`DeploymentPlan`]): named models × ordered
//!   [`VersionSpec`]s, each a [`models::LoadedModel`] plus a publish time;
//! * a **memory-budgeted residency manager**: explicit load/unload against
//!   [`gpusim::MemoryPool`] with simulated PCIe load latency
//!   ([`gpusim::MemoryPool::transfer_time`]) and warm-up runs, cost-aware
//!   LRU eviction of idle versions when a load does not fit, and a hard
//!   in-sim assertion that resident bytes never exceed the budget;
//! * a **rollout controller**: per-model aspired-versions state machine
//!   (`Loading → Warming → Serving → Draining → Unloaded`) with canary
//!   splits that route a deterministic fraction of new `Session::Run`s to
//!   the candidate version and promote or roll back on observed run
//!   latency versus the incumbent. Draining versions complete every
//!   in-flight run before their weights are unloaded.
//!
//! The manager is engine-agnostic: it owns no clock and no event queue.
//! The serving engine calls [`LifecycleManager::route`] per new run,
//! [`LifecycleManager::run_finished`] per completed run and
//! [`LifecycleManager::tick`] at requested instants; every call fills an
//! [`Effects`] record (typed events, clients to wake, ticks to schedule)
//! that the engine translates into trace/telemetry and event-queue
//! operations. Scheduler cost profiles are wired through the
//! [`ProfileBinder`] trait: each version's calibrated cost-accumulation
//! profile is bound when the version starts serving and retired when it is
//! unloaded.

mod config;
mod manager;

pub use config::{CanaryConfig, DeploymentPlan, LifecycleConfig, ModelDeployment, VersionSpec};
pub use manager::{Effects, LifecycleEvent, LifecycleManager, Route, VersionKey, VersionState};

use std::fmt;

/// Binds a version's calibrated scheduler profile while it is servable.
///
/// Implemented by the scheduling layer (for Olympian, an adapter over
/// `ProfileStore`): [`ProfileBinder::bind`] registers the versioned
/// profile under `"{model}@v{version}"` when the version starts serving,
/// and [`ProfileBinder::unbind`] retires it when the version is unloaded,
/// so the scheduler resolves exactly the versions that are resident.
pub trait ProfileBinder: fmt::Debug + Send + Sync {
    /// Registers the profile for `versioned_name` (e.g. `"svc@v2"`) at
    /// `batch`. Called when a version transitions into `Serving`.
    fn bind(&self, versioned_name: &str, batch: u64);
    /// Retires the profile for `versioned_name` at `batch`. Called when a
    /// version is unloaded (drained or evicted).
    fn unbind(&self, versioned_name: &str, batch: u64);
}

/// Errors detected when validating a deployment plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleError {
    /// A deployment declared no versions.
    NoVersions {
        /// The served model name.
        model: String,
    },
    /// Two deployments share the same served name.
    DuplicateModel {
        /// The served model name.
        model: String,
    },
    /// A version's `LoadedModel` name differs from the deployment name.
    NameMismatch {
        /// The served model name.
        model: String,
        /// The offending version number (1-based).
        version: u32,
        /// The version model's actual name.
        got: String,
    },
    /// A version's batch size differs from version 1's (sessions are
    /// issued against whichever version serves, so batch must be stable).
    BatchMismatch {
        /// The served model name.
        model: String,
        /// The offending version number (1-based).
        version: u32,
        /// The batch size of version 1.
        expected: u64,
        /// The offending version's batch size.
        got: u64,
    },
    /// Version publish times regress (versions must be published in
    /// monotonically non-decreasing order).
    PublishOrder {
        /// The served model name.
        model: String,
        /// The offending version number (1-based).
        version: u32,
    },
    /// A version's weights exceed the whole device budget: it could never
    /// be resident, so every route to it would wait forever.
    OversizedVersion {
        /// The served model name.
        model: String,
        /// The offending version number (1-based).
        version: u32,
        /// The version's weight bytes.
        bytes: u64,
        /// The device memory budget.
        budget: u64,
    },
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::NoVersions { model } => {
                write!(f, "deployment {model:?} declares no versions")
            }
            LifecycleError::DuplicateModel { model } => {
                write!(f, "deployment {model:?} is declared twice")
            }
            LifecycleError::NameMismatch { model, version, got } => write!(
                f,
                "deployment {model:?} version {version} wraps a model named {got:?}"
            ),
            LifecycleError::BatchMismatch { model, version, expected, got } => write!(
                f,
                "deployment {model:?} version {version} has batch {got}, expected {expected}"
            ),
            LifecycleError::PublishOrder { model, version } => write!(
                f,
                "deployment {model:?} version {version} is published before its predecessor"
            ),
            LifecycleError::OversizedVersion { model, version, bytes, budget } => write!(
                f,
                "deployment {model:?} version {version} needs {bytes} bytes, \
                 over the {budget}-byte device budget"
            ),
        }
    }
}

impl std::error::Error for LifecycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_errors() -> Vec<LifecycleError> {
        vec![
            LifecycleError::NoVersions { model: "svc".into() },
            LifecycleError::DuplicateModel { model: "svc".into() },
            LifecycleError::NameMismatch {
                model: "svc".into(),
                version: 2,
                got: "other".into(),
            },
            LifecycleError::BatchMismatch {
                model: "svc".into(),
                version: 2,
                expected: 4,
                got: 8,
            },
            LifecycleError::PublishOrder { model: "svc".into(), version: 2 },
            LifecycleError::OversizedVersion {
                model: "svc".into(),
                version: 1,
                bytes: 2048,
                budget: 1024,
            },
        ]
    }

    #[test]
    fn display_mentions_the_model_and_version() {
        for e in all_errors() {
            let text = e.to_string();
            assert!(text.contains("svc"), "{text}");
        }
        let text = LifecycleError::BatchMismatch {
            model: "svc".into(),
            version: 2,
            expected: 4,
            got: 8,
        }
        .to_string();
        assert!(text.contains("batch 8") && text.contains("expected 4"), "{text}");
    }

    #[test]
    fn errors_round_trip_through_the_error_trait() {
        for e in all_errors() {
            let boxed: Box<dyn std::error::Error> = Box::new(e.clone());
            assert_eq!(boxed.to_string(), e.to_string());
            assert!(boxed.source().is_none());
        }
    }
}
