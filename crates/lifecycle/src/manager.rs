//! The lifecycle manager: residency, state machine and canary control.

use crate::{LifecycleConfig, LifecycleError, ProfileBinder};
use gpusim::{Allocation, MemoryPool};
use models::LoadedModel;
use simtime::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Identifies one version of one managed model: indexes into the manager's
/// registry. `version` is 1-based, matching TF-Serving conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionKey {
    /// Deployment index in plan declaration order.
    pub model: u32,
    /// Version number (1-based).
    pub version: u32,
}

/// The aspired-versions state machine. Evicted and drained versions return
/// to `Unloaded` and may be reloaded later on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionState {
    /// Not resident on the device.
    Unloaded,
    /// Weights are transferring to the device.
    Loading,
    /// Resident; executing warm-up runs before accepting traffic.
    Warming,
    /// Resident and eligible to serve new runs.
    Serving,
    /// No new runs; waiting for in-flight runs to finish before unload.
    Draining,
}

/// The routing decision for one new `Session::Run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Issue the run against this version now.
    Issue(VersionKey),
    /// No version is servable yet; the client is parked and will be woken
    /// (via [`Effects::wake`]) when one starts serving.
    Wait,
}

/// A typed lifecycle event for the engine to translate into trace and
/// telemetry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// A version's weights started transferring to the device.
    Load {
        /// The version.
        key: VersionKey,
        /// Weight bytes allocated.
        bytes: u64,
        /// Simulated transfer latency.
        latency: SimDuration,
    },
    /// One warm-up run of a freshly loaded version completed.
    Warmup {
        /// The version.
        key: VersionKey,
        /// Warm-up run ordinal (1-based).
        run: u32,
    },
    /// An idle version was evicted to make room for a load.
    Evicted {
        /// The version.
        key: VersionKey,
        /// Weight bytes freed.
        bytes: u64,
    },
    /// A draining version finished its last in-flight run and was
    /// unloaded.
    Unloaded {
        /// The version.
        key: VersionKey,
        /// Weight bytes freed.
        bytes: u64,
    },
    /// A version stopped accepting new runs and started draining.
    Drain {
        /// The version.
        key: VersionKey,
        /// Runs still in flight at drain start.
        inflight: u32,
    },
    /// A canary candidate was promoted to the serving version.
    Promote {
        /// The candidate version.
        key: VersionKey,
        /// Candidate mean run latency, microseconds.
        cand_us: u64,
        /// Incumbent mean run latency, microseconds.
        base_us: u64,
    },
    /// A canary candidate was rolled back (zero latencies mean it was
    /// superseded by a newer publish before the canary completed).
    Rollback {
        /// The candidate version.
        key: VersionKey,
        /// Candidate mean run latency, microseconds.
        cand_us: u64,
        /// Incumbent mean run latency, microseconds.
        base_us: u64,
    },
}

/// Side effects of a manager call, for the engine to apply: typed events
/// (→ trace/telemetry), parked clients to wake (→ retry their next run)
/// and future instants at which [`LifecycleManager::tick`] must run.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// Typed lifecycle events, in occurrence order.
    pub events: Vec<LifecycleEvent>,
    /// Parked clients to wake, in park order.
    pub wake: Vec<u32>,
    /// Instants at which the engine must call `tick`.
    pub ticks: Vec<SimTime>,
}

impl Effects {
    /// True when the call produced no effects at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.wake.is_empty() && self.ticks.is_empty()
    }
}

/// Per-version runtime record.
#[derive(Debug)]
struct VersionRt {
    model: LoadedModel,
    publish_at: SimTime,
    state: VersionState,
    weights: Option<Allocation>,
    /// Next state-machine transition instant (load or warm-up completion).
    due: Option<SimTime>,
    warmups_done: u32,
    inflight: u32,
    /// Woken-but-not-yet-issued clients bound for this version. A wake is
    /// delivered through [`Effects::wake`] *after* the manager call that
    /// produced it returns, so without this credit a version could finish
    /// warming and be evicted for a pending load in the same `tick` —
    /// before its parked clients ever issue a run — and the whole set of
    /// deployments would churn loads forever without serving anything.
    /// Counted like `inflight` by the eviction policy.
    wake_pending: u32,
    last_used: SimTime,
    /// Completed-run count in the current canary window.
    stat_runs: u32,
    /// Summed run latency (ns) in the current canary window.
    stat_lat_ns: u64,
}

/// Per-deployment runtime record.
#[derive(Debug)]
struct ModelRt {
    name: String,
    versions: Vec<VersionRt>,
    /// Index of the version currently serving, if any.
    serving: Option<usize>,
    /// Index of the active canary candidate, if any.
    candidate: Option<usize>,
    /// Index of the newest published (aspired) version.
    aspired: usize,
    /// How many versions have been published so far.
    published: usize,
    /// Runs issued since the canary split activated (drives the stride).
    issued: u64,
    /// Clients parked until a version starts serving.
    waiters: VecDeque<u32>,
}

/// The deterministic model-lifecycle manager. See the crate docs for the
/// overall design; all iteration is over dense vectors in declaration
/// order, so identical call sequences produce identical effects.
#[derive(Debug)]
pub struct LifecycleManager {
    load_gbps: f64,
    warmup_runs: u32,
    canary_stride: u64,
    canary_min_runs: u32,
    canary_tolerance: f64,
    binder: Option<Arc<dyn ProfileBinder>>,
    /// The device memory budget (bytes); resident weights never exceed it.
    budget: u64,
    /// Currently resident weight bytes across all versions.
    resident: u64,
    models: Vec<ModelRt>,
    by_name: HashMap<String, usize>,
    /// Versioned display/profile names, `"{name}@v{version}"`.
    vnames: Vec<Vec<String>>,
    /// Loads that did not fit even after eviction, retried on every free.
    pending_loads: Vec<VersionKey>,
}

impl LifecycleManager {
    /// Builds a manager over `cfg` for a device with `budget` bytes of
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns a [`LifecycleError`] when the plan is invalid or any
    /// version's weights exceed the whole budget (it could never serve).
    pub fn new(cfg: &LifecycleConfig, budget: u64) -> Result<Self, LifecycleError> {
        cfg.plan.validate()?;
        let mut models = Vec::with_capacity(cfg.plan.models.len());
        let mut by_name = HashMap::new();
        let mut vnames = Vec::with_capacity(cfg.plan.models.len());
        for (mi, dep) in cfg.plan.models.iter().enumerate() {
            let mut versions = Vec::with_capacity(dep.versions.len());
            let mut names = Vec::with_capacity(dep.versions.len());
            for (k, spec) in dep.versions.iter().enumerate() {
                if spec.model.weights_bytes() > budget {
                    return Err(LifecycleError::OversizedVersion {
                        model: dep.name.clone(),
                        version: (k + 1) as u32,
                        bytes: spec.model.weights_bytes(),
                        budget,
                    });
                }
                versions.push(VersionRt {
                    model: spec.model.clone(),
                    publish_at: spec.publish_at,
                    state: VersionState::Unloaded,
                    weights: None,
                    due: None,
                    warmups_done: 0,
                    inflight: 0,
                    wake_pending: 0,
                    last_used: SimTime::ZERO,
                    stat_runs: 0,
                    stat_lat_ns: 0,
                });
                names.push(format!("{}@v{}", dep.name, k + 1));
            }
            by_name.insert(dep.name.clone(), mi);
            vnames.push(names);
            models.push(ModelRt {
                name: dep.name.clone(),
                versions,
                serving: None,
                candidate: None,
                aspired: 0,
                published: 0,
                issued: 0,
                waiters: VecDeque::new(),
            });
        }
        Ok(LifecycleManager {
            load_gbps: cfg.load_gbps,
            warmup_runs: cfg.warmup_runs,
            canary_stride: cfg.canary.stride,
            canary_min_runs: cfg.canary.min_runs,
            canary_tolerance: cfg.canary.tolerance,
            binder: cfg.binder.clone(),
            budget,
            resident: 0,
            models,
            by_name,
            vnames,
            pending_loads: Vec::new(),
        })
    }

    /// Requests a tick at every version's publish instant. Call once
    /// before the simulation starts.
    pub fn startup(&self, fx: &mut Effects) {
        for m in &self.models {
            for v in &m.versions {
                fx.ticks.push(v.publish_at);
            }
        }
    }

    /// True when `model` is one of the deployments this manager owns.
    pub fn manages(&self, model: &str) -> bool {
        self.by_name.contains_key(model)
    }

    /// The versioned profile/trace name, `"{name}@v{version}"`.
    pub fn versioned_name(&self, key: VersionKey) -> &str {
        &self.vnames[key.model as usize][key.version as usize - 1]
    }

    /// The servable backing this version.
    pub fn version_model(&self, key: VersionKey) -> &LoadedModel {
        &self.models[key.model as usize].versions[key.version as usize - 1].model
    }

    /// The served (deployment) name of this version's model.
    pub fn model_name(&self, key: VersionKey) -> &str {
        &self.models[key.model as usize].name
    }

    /// Currently resident weight bytes across all managed versions.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// Current state of a version.
    pub fn state(&self, key: VersionKey) -> VersionState {
        self.models[key.model as usize].versions[key.version as usize - 1].state
    }

    /// Number of managed deployments (dense indices `0..model_count()`).
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// Deployment index of `model`, if managed. Indices are declaration
    /// order, so they agree across every manager built from the same plan
    /// (the fleet invariant the cluster router relies on).
    pub fn model_index(&self, model: &str) -> Option<usize> {
        self.by_name.get(model).copied()
    }

    /// The serving version of deployment `mi`, if any.
    pub fn serving_version(&self, mi: usize) -> Option<VersionKey> {
        self.models[mi]
            .serving
            .map(|vi| VersionKey { model: mi as u32, version: vi as u32 + 1 })
    }

    /// True when the aspired version of deployment `mi` is already on its
    /// way to serving (Loading or Warming): an arrival routed here will
    /// wait, but pays no *new* transfer.
    pub fn is_loading(&self, mi: usize) -> bool {
        let m = &self.models[mi];
        matches!(
            m.versions[m.aspired].state,
            VersionState::Loading | VersionState::Warming
        )
    }

    /// Weight bytes of the aspired version of deployment `mi` — what a
    /// fresh load here would transfer.
    pub fn aspired_weights_bytes(&self, mi: usize) -> u64 {
        let m = &self.models[mi];
        m.versions[m.aspired].model.weights_bytes()
    }

    /// The effective load bandwidth (GB/s), for router transfer estimates.
    pub fn load_gbps(&self) -> f64 {
        self.load_gbps
    }

    /// True when clients are parked waiting for deployment `mi`.
    pub fn has_waiters(&self, mi: usize) -> bool {
        !self.models[mi].waiters.is_empty()
    }

    /// Asks for the aspired version of deployment `mi` to become resident
    /// (the cluster reconfiguration "load/migrate-in" command). Starts the
    /// load when the version is `Unloaded` and returns `true`; returns
    /// `false` when it is already resident, loading, or draining (a drain
    /// must finish before a reload).
    pub fn request_load(
        &mut self,
        mi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) -> bool {
        let a = self.models[mi].aspired;
        if self.models[mi].versions[a].state != VersionState::Unloaded {
            return false;
        }
        self.start_load(mi, a, now, pool, fx);
        true
    }

    /// Asks for deployment `mi` to stop serving on this device (the
    /// cluster reconfiguration "drain/migrate-out" command). Refuses —
    /// returning `false` — when nothing is serving, when clients are
    /// parked or woken-but-not-yet-issued here (they must issue first),
    /// or while a canary is deciding. Otherwise begins the drain and
    /// returns `true`; the weights free once in-flight runs finish.
    pub fn request_drain(
        &mut self,
        mi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) -> bool {
        let m = &self.models[mi];
        let Some(s) = m.serving else { return false };
        if m.versions[s].state != VersionState::Serving {
            return false; // already draining, waiting out in-flight runs
        }
        if !m.waiters.is_empty() || m.versions[s].wake_pending > 0 || m.candidate.is_some() {
            return false;
        }
        self.begin_drain(mi, s, pool, fx);
        self.pump_pending(now, pool, fx);
        true
    }

    /// Returns one wake credit on deployment `mi`'s serving version: a
    /// client woken by this manager re-routed to a different device, so
    /// the reservation held for its issue must not pin the version
    /// against eviction forever. No-op when nothing is serving.
    pub fn cancel_wake_credit(&mut self, mi: usize) {
        if let Some(s) = self.models[mi].serving {
            let v = &mut self.models[mi].versions[s];
            v.wake_pending = v.wake_pending.saturating_sub(1);
        }
    }

    /// Routes one new run of `model` for `client`. Either issues a version
    /// (serving version, or the canary candidate for every `stride`-th run
    /// while a canary is active) or parks the client until a version
    /// starts serving, kicking off the aspired version's load if needed.
    pub fn route(
        &mut self,
        model: &str,
        client: u32,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) -> Route {
        let mi = *self.by_name.get(model).expect("route for unmanaged model");
        if let Some(s) = self.models[mi].serving {
            // Demand can return while the replica drains: the weights are
            // still resident (they free only at unload), so serving this
            // run here is strictly cheaper than finishing the drain and
            // paying the transfer again. Routing cancels the drain.
            if self.models[mi].versions[s].state == VersionState::Draining {
                self.models[mi].versions[s].state = VersionState::Serving;
            }
            let m = &self.models[mi];
            debug_assert_eq!(m.versions[s].state, VersionState::Serving);
            let pick = match m.candidate {
                Some(c) if m.versions[c].state == VersionState::Serving => {
                    let m = &mut self.models[mi];
                    m.issued += 1;
                    if m.issued.is_multiple_of(self.canary_stride) {
                        c
                    } else {
                        s
                    }
                }
                _ => s,
            };
            let v = &mut self.models[mi].versions[pick];
            v.inflight += 1;
            v.wake_pending = v.wake_pending.saturating_sub(1);
            v.last_used = now;
            return Route::Issue(VersionKey { model: mi as u32, version: pick as u32 + 1 });
        }
        let target = self.models[mi].aspired;
        if self.models[mi].versions[target].state == VersionState::Unloaded {
            self.start_load(mi, target, now, pool, fx);
        }
        self.models[mi].waiters.push_back(client);
        Route::Wait
    }

    /// Like [`route`](Self::route), but resolves the request to the
    /// *cheapest* resident version — the Serving version with the smallest
    /// total GPU time — instead of the canary split. The control plane's
    /// degradation ladder routes through this while elevated, trading
    /// answer fidelity for GPU time. Falls back to [`route`](Self::route)
    /// when no version is serving.
    ///
    /// # Panics
    ///
    /// Panics if `model` is not managed by this deployment plan.
    pub fn route_cheapest(
        &mut self,
        model: &str,
        client: u32,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) -> Route {
        let mi = *self.by_name.get(model).expect("route for unmanaged model");
        let pick = self.models[mi]
            .versions
            .iter()
            .enumerate()
            .filter(|(_, v)| v.state == VersionState::Serving)
            .min_by_key(|(i, v)| (v.model.graph().total_gpu_time(), *i))
            .map(|(i, _)| i);
        let Some(pick) = pick else {
            return self.route(model, client, now, pool, fx);
        };
        let v = &mut self.models[mi].versions[pick];
        v.inflight += 1;
        v.wake_pending = v.wake_pending.saturating_sub(1);
        v.last_used = now;
        Route::Issue(VersionKey { model: mi as u32, version: pick as u32 + 1 })
    }

    /// Records a run completion against `key`. `latency` is `None` for
    /// cancelled runs (excluded from canary statistics). Advances the
    /// canary decision, completes drains and retries pending loads.
    pub fn run_finished(
        &mut self,
        key: VersionKey,
        now: SimTime,
        latency: Option<SimDuration>,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) {
        let mi = key.model as usize;
        let vi = key.version as usize - 1;
        {
            let v = &mut self.models[mi].versions[vi];
            assert!(v.inflight > 0, "run_finished with no runs in flight");
            v.inflight -= 1;
            v.last_used = now;
        }
        let m = &self.models[mi];
        if let (Some(s), Some(c)) = (m.serving, m.candidate) {
            let armed = m.versions[s].state == VersionState::Serving
                && m.versions[c].state == VersionState::Serving;
            if armed && (vi == s || vi == c) {
                if let Some(lat) = latency {
                    let v = &mut self.models[mi].versions[vi];
                    v.stat_runs += 1;
                    v.stat_lat_ns += lat.as_nanos();
                }
                self.maybe_decide_canary(mi, now, pool, fx);
            }
        }
        let v = &self.models[mi].versions[vi];
        if v.state == VersionState::Draining && v.inflight == 0 {
            self.unload(mi, vi, pool, fx);
            self.pump_pending(now, pool, fx);
        } else if v.inflight == 0 {
            // The version just went idle: it is now an eviction candidate,
            // so queued loads that were starved for memory may fit. The
            // cost-aware LRU ranks this freshest version last, so a retry
            // prefers reclaiming staler residents first.
            self.pump_pending(now, pool, fx);
        }
    }

    /// Advances time-driven transitions up to `now`: version publishes,
    /// load completions, warm-up runs and retried loads.
    pub fn tick(&mut self, now: SimTime, pool: &mut MemoryPool, fx: &mut Effects) {
        for mi in 0..self.models.len() {
            while self.models[mi].published < self.models[mi].versions.len()
                && self.models[mi].versions[self.models[mi].published].publish_at <= now
            {
                let v = self.models[mi].published;
                self.models[mi].published += 1;
                self.publish(mi, v, now, pool, fx);
            }
        }
        for mi in 0..self.models.len() {
            for vi in 0..self.models[mi].versions.len() {
                while self.models[mi].versions[vi].due.is_some_and(|t| t <= now) {
                    self.advance(mi, vi, now, pool, fx);
                }
            }
        }
        self.pump_pending(now, pool, fx);
    }

    /// A newly published version becomes the aspired version. With a
    /// serving incumbent this starts a canary; an unfinished older canary
    /// is superseded (rolled back) first.
    fn publish(
        &mut self,
        mi: usize,
        vi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) {
        if let Some(old) = self.models[mi].candidate.take() {
            if old != vi {
                fx.events.push(LifecycleEvent::Rollback {
                    key: VersionKey { model: mi as u32, version: old as u32 + 1 },
                    cand_us: 0,
                    base_us: 0,
                });
                if self.models[mi].versions[old].state == VersionState::Serving {
                    self.begin_drain(mi, old, pool, fx);
                    self.pump_pending(now, pool, fx);
                }
            }
        }
        self.models[mi].aspired = vi;
        if self.models[mi].serving.is_none() {
            // No incumbent: load on demand, or immediately if clients are
            // already parked waiting for this model.
            if !self.models[mi].waiters.is_empty()
                && self.models[mi].versions[vi].state == VersionState::Unloaded
            {
                self.start_load(mi, vi, now, pool, fx);
            }
        } else {
            self.maybe_start_canary(mi, now, pool, fx);
        }
    }

    /// Starts a canary for the aspired version when an incumbent serves
    /// and no canary is active.
    fn maybe_start_canary(
        &mut self,
        mi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) {
        let m = &self.models[mi];
        let (Some(s), None) = (m.serving, m.candidate) else { return };
        let a = m.aspired;
        if a == s {
            return;
        }
        self.models[mi].candidate = Some(a);
        match self.models[mi].versions[a].state {
            VersionState::Unloaded => {
                self.start_load(mi, a, now, pool, fx);
            }
            VersionState::Serving => self.arm_canary(mi),
            // Loading/Warming: the split arms when it reaches Serving.
            // Draining cannot happen: a draining version is never aspired.
            _ => {}
        }
    }

    /// Resets both arms' statistics and the stride counter: the split is
    /// live from this instant.
    fn arm_canary(&mut self, mi: usize) {
        let m = &mut self.models[mi];
        m.issued = 0;
        let (s, c) = (m.serving.expect("armed without incumbent"), m.candidate.expect("armed without candidate"));
        for vi in [s, c] {
            m.versions[vi].stat_runs = 0;
            m.versions[vi].stat_lat_ns = 0;
        }
    }

    /// Promotes or rolls back once both arms observed enough runs.
    fn maybe_decide_canary(
        &mut self,
        mi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) {
        let m = &self.models[mi];
        let (Some(s), Some(c)) = (m.serving, m.candidate) else { return };
        let (inc, cand) = (&m.versions[s], &m.versions[c]);
        if inc.stat_runs < self.canary_min_runs || cand.stat_runs < self.canary_min_runs {
            return;
        }
        let base_ns = inc.stat_lat_ns / inc.stat_runs as u64;
        let cand_ns = cand.stat_lat_ns / cand.stat_runs as u64;
        let healthy = cand_ns as f64 <= base_ns as f64 * (1.0 + self.canary_tolerance);
        let key = VersionKey { model: mi as u32, version: c as u32 + 1 };
        self.models[mi].candidate = None;
        if healthy {
            self.models[mi].serving = Some(c);
            self.models[mi].aspired = c;
            fx.events.push(LifecycleEvent::Promote {
                key,
                cand_us: cand_ns / 1_000,
                base_us: base_ns / 1_000,
            });
            self.begin_drain(mi, s, pool, fx);
        } else {
            self.models[mi].aspired = s;
            fx.events.push(LifecycleEvent::Rollback {
                key,
                cand_us: cand_ns / 1_000,
                base_us: base_ns / 1_000,
            });
            self.begin_drain(mi, c, pool, fx);
        }
        self.pump_pending(now, pool, fx);
    }

    /// Runs one due state-machine transition for `(mi, vi)`.
    fn advance(
        &mut self,
        mi: usize,
        vi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) {
        let v = &mut self.models[mi].versions[vi];
        match v.state {
            VersionState::Loading => {
                v.state = VersionState::Warming;
                v.warmups_done = 0;
                if self.warmup_runs == 0 {
                    v.due = None;
                    self.on_serving(mi, vi, now, pool, fx);
                } else {
                    let dur = v.model.graph().total_gpu_time();
                    let due = now + dur;
                    v.due = Some(due);
                    fx.ticks.push(due);
                }
            }
            VersionState::Warming => {
                v.warmups_done += 1;
                let done = v.warmups_done;
                fx.events.push(LifecycleEvent::Warmup {
                    key: VersionKey { model: mi as u32, version: vi as u32 + 1 },
                    run: done,
                });
                if done >= self.warmup_runs {
                    v.due = None;
                    self.on_serving(mi, vi, now, pool, fx);
                } else {
                    let dur = v.model.graph().total_gpu_time();
                    let due = now + dur;
                    v.due = Some(due);
                    fx.ticks.push(due);
                }
            }
            // Unloaded/Serving/Draining have no timed transitions.
            _ => {
                v.due = None;
            }
        }
    }

    /// A version finished warming: bind its profile, take over serving if
    /// the model has none, wake parked clients, arm a pending canary.
    fn on_serving(
        &mut self,
        mi: usize,
        vi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) {
        {
            let v = &mut self.models[mi].versions[vi];
            v.state = VersionState::Serving;
            v.last_used = now;
        }
        if let Some(b) = &self.binder {
            let batch = self.models[mi].versions[vi].model.batch();
            b.bind(&self.vnames[mi][vi], batch);
        }
        if self.models[mi].candidate == Some(vi) {
            self.arm_canary(mi);
        } else if self.models[mi].serving.is_none() {
            self.models[mi].serving = Some(vi);
            while let Some(client) = self.models[mi].waiters.pop_front() {
                fx.wake.push(client);
                self.models[mi].versions[vi].wake_pending += 1;
            }
            // A version published while this one was loading starts its
            // canary now that an incumbent exists.
            self.maybe_start_canary(mi, now, pool, fx);
        }
        // Otherwise: superseded while loading — resident but idle, and
        // reclaimed by cost-aware eviction when memory is needed.
    }

    /// Stops new traffic to `(mi, vi)`; unloads immediately when nothing
    /// is in flight.
    fn begin_drain(&mut self, mi: usize, vi: usize, pool: &mut MemoryPool, fx: &mut Effects) {
        let v = &mut self.models[mi].versions[vi];
        debug_assert_eq!(v.state, VersionState::Serving);
        v.state = VersionState::Draining;
        let inflight = v.inflight;
        fx.events.push(LifecycleEvent::Drain {
            key: VersionKey { model: mi as u32, version: vi as u32 + 1 },
            inflight,
        });
        if inflight == 0 {
            self.unload(mi, vi, pool, fx);
        }
    }

    /// Frees a drained version's weights.
    fn unload(&mut self, mi: usize, vi: usize, pool: &mut MemoryPool, fx: &mut Effects) {
        let v = &mut self.models[mi].versions[vi];
        debug_assert_eq!(v.state, VersionState::Draining);
        debug_assert_eq!(v.inflight, 0);
        let bytes = self.release(mi, vi, pool);
        fx.events.push(LifecycleEvent::Unloaded {
            key: VersionKey { model: mi as u32, version: vi as u32 + 1 },
            bytes,
        });
    }

    /// Returns `(mi, vi)` to `Unloaded`, freeing its allocation and
    /// retiring its profile. Returns the freed byte count.
    fn release(&mut self, mi: usize, vi: usize, pool: &mut MemoryPool) -> u64 {
        let v = &mut self.models[mi].versions[vi];
        let alloc = v.weights.take().expect("resident version without allocation");
        let bytes = alloc.bytes();
        pool.free(alloc);
        v.state = VersionState::Unloaded;
        v.due = None;
        v.warmups_done = 0;
        v.wake_pending = 0;
        self.resident -= bytes;
        if self.models[mi].serving == Some(vi) {
            self.models[mi].serving = None;
        }
        if let Some(b) = &self.binder {
            let batch = self.models[mi].versions[vi].model.batch();
            b.unbind(&self.vnames[mi][vi], batch);
        }
        bytes
    }

    /// Starts loading `(mi, vi)`, evicting idle versions (cost-aware LRU)
    /// until the allocation fits. Queues the load when it cannot fit even
    /// after eviction.
    fn start_load(
        &mut self,
        mi: usize,
        vi: usize,
        now: SimTime,
        pool: &mut MemoryPool,
        fx: &mut Effects,
    ) {
        debug_assert_eq!(self.models[mi].versions[vi].state, VersionState::Unloaded);
        let bytes = self.models[mi].versions[vi].model.weights_bytes();
        loop {
            match pool.alloc(bytes) {
                Ok(alloc) => {
                    let latency = MemoryPool::transfer_time(bytes, self.load_gbps);
                    let due = now + latency;
                    let v = &mut self.models[mi].versions[vi];
                    v.weights = Some(alloc);
                    v.state = VersionState::Loading;
                    v.due = Some(due);
                    self.resident += bytes;
                    assert!(
                        self.resident <= self.budget,
                        "resident model bytes {} exceed the {}-byte device budget",
                        self.resident,
                        self.budget
                    );
                    fx.events.push(LifecycleEvent::Load {
                        key: VersionKey { model: mi as u32, version: vi as u32 + 1 },
                        bytes,
                        latency,
                    });
                    fx.ticks.push(due);
                    return;
                }
                Err(_) => {
                    let Some((emi, evi)) = self.pick_victim() else {
                        let key = VersionKey { model: mi as u32, version: vi as u32 + 1 };
                        if !self.pending_loads.contains(&key) {
                            self.pending_loads.push(key);
                        }
                        return;
                    };
                    let freed = self.evict(emi, evi, pool, fx);
                    debug_assert!(freed > 0);
                }
            }
        }
    }

    /// Picks the eviction victim among idle serving versions: maximum
    /// staleness-per-reload-cost, compared exactly via u128
    /// cross-multiplication; ties break to the smallest (model, version).
    /// Active canary arms and incumbents with parked clients are exempt.
    fn pick_victim(&self) -> Option<(usize, usize)> {
        let now_candidates = self.models.iter().enumerate().flat_map(|(mi, m)| {
            m.versions.iter().enumerate().filter_map(move |(vi, v)| {
                let idle =
                    v.state == VersionState::Serving && v.inflight == 0 && v.wake_pending == 0;
                let canary_arm =
                    m.candidate.is_some() && (m.candidate == Some(vi) || m.serving == Some(vi));
                let needed_incumbent = m.serving == Some(vi) && !m.waiters.is_empty();
                (idle && !canary_arm && !needed_incumbent).then_some((mi, vi, v))
            })
        });
        let mut best: Option<(usize, usize, u128, u128)> = None;
        for (mi, vi, v) in now_candidates {
            let staleness = v.last_used.as_nanos() as u128; // older ⇒ smaller
            let cost = MemoryPool::transfer_time(v.model.weights_bytes(), self.load_gbps)
                .as_nanos()
                .max(1) as u128;
            // Lower last-used-per-cost wins: evict the stalest version
            // whose reload is cheapest. score(a) < score(b) ⇔
            // a.last_used · b.cost < b.last_used · a.cost.
            let better = match &best {
                None => true,
                Some((bmi, bvi, blast, bcost)) => {
                    let lhs = staleness * bcost;
                    let rhs = blast * cost;
                    lhs < rhs || (lhs == rhs && (mi, vi) < (*bmi, *bvi))
                }
            };
            if better {
                best = Some((mi, vi, staleness, cost));
            }
        }
        best.map(|(mi, vi, _, _)| (mi, vi))
    }

    /// Evicts `(mi, vi)` and returns the freed byte count.
    fn evict(&mut self, mi: usize, vi: usize, pool: &mut MemoryPool, fx: &mut Effects) -> u64 {
        let v = &mut self.models[mi].versions[vi];
        let alloc = v.weights.take().expect("evicting non-resident version");
        pool.free(alloc);
        v.weights = None;
        let bytes = {
            let b = v.model.weights_bytes();
            v.state = VersionState::Unloaded;
            v.due = None;
            v.warmups_done = 0;
            v.wake_pending = 0;
            b
        };
        self.resident -= bytes;
        if self.models[mi].serving == Some(vi) {
            self.models[mi].serving = None;
        }
        if let Some(b) = &self.binder {
            let batch = self.models[mi].versions[vi].model.batch();
            b.unbind(&self.vnames[mi][vi], batch);
        }
        fx.events.push(LifecycleEvent::Evicted {
            key: VersionKey { model: mi as u32, version: vi as u32 + 1 },
            bytes,
        });
        bytes
    }

    /// Retries queued loads in arrival order, dropping ones no longer
    /// wanted (superseded while waiting for memory).
    fn pump_pending(&mut self, now: SimTime, pool: &mut MemoryPool, fx: &mut Effects) {
        if self.pending_loads.is_empty() {
            return;
        }
        let queued = std::mem::take(&mut self.pending_loads);
        for key in queued {
            let (mi, vi) = (key.model as usize, key.version as usize - 1);
            let m = &self.models[mi];
            let wanted = m.aspired == vi || m.candidate == Some(vi);
            if wanted && m.versions[vi].state == VersionState::Unloaded {
                self.start_load(mi, vi, now, pool, fx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeploymentPlan, ModelDeployment};
    use std::collections::BTreeSet;

    fn renamed(name: &str, m: LoadedModel) -> LoadedModel {
        LoadedModel::from_parts(
            name,
            None,
            m.batch(),
            Arc::clone(m.graph()),
            m.weights_bytes(),
            m.activation_bytes(),
        )
    }

    /// A tiny deterministic harness driving the manager directly: keeps
    /// the pending tick set and advances virtual time tick by tick.
    struct Sim {
        mgr: LifecycleManager,
        pool: MemoryPool,
        now: SimTime,
        ticks: BTreeSet<SimTime>,
        events: Vec<LifecycleEvent>,
        woken: Vec<u32>,
    }

    impl Sim {
        fn new(cfg: LifecycleConfig, budget: u64) -> Sim {
            let mgr = LifecycleManager::new(&cfg, budget).expect("valid config");
            let mut fx = Effects::default();
            mgr.startup(&mut fx);
            let mut sim = Sim {
                mgr,
                pool: MemoryPool::new(budget),
                now: SimTime::ZERO,
                ticks: BTreeSet::new(),
                events: Vec::new(),
                woken: Vec::new(),
            };
            sim.absorb(fx);
            sim
        }

        fn absorb(&mut self, fx: Effects) {
            self.events.extend(fx.events.iter().copied());
            self.woken.extend(fx.wake.iter().copied());
            for t in fx.ticks {
                self.ticks.insert(t.max(self.now));
            }
            assert!(self.mgr.resident_bytes() <= self.pool.capacity());
            // Only the manager allocates in this harness: its residency
            // counter and the pool's accounting must agree exactly.
            assert_eq!(self.mgr.resident_bytes(), self.pool.used());
        }

        /// Runs every due tick up to and including `until`.
        fn run_until(&mut self, until: SimTime) {
            while let Some(&t) = self.ticks.iter().next() {
                if t > until {
                    break;
                }
                self.ticks.remove(&t);
                self.now = t;
                let mut fx = Effects::default();
                self.mgr.tick(self.now, &mut self.pool, &mut fx);
                self.absorb(fx);
            }
            if until != SimTime::MAX {
                self.now = until;
            }
        }

        fn route(&mut self, model: &str, client: u32) -> Route {
            let mut fx = Effects::default();
            let r = self.mgr.route(model, client, self.now, &mut self.pool, &mut fx);
            self.absorb(fx);
            r
        }

        fn finish(&mut self, key: VersionKey, latency: SimDuration) {
            let mut fx = Effects::default();
            self.mgr
                .run_finished(key, self.now, Some(latency), &mut self.pool, &mut fx);
            self.absorb(fx);
        }

        fn drain_ticks(&mut self) {
            self.run_until(SimTime::MAX);
        }
    }

    fn one_model_plan() -> DeploymentPlan {
        DeploymentPlan::new()
            .with_model(ModelDeployment::new("svc", renamed("svc", models::mini::tiny(4))))
    }

    #[test]
    fn load_warm_serve_happy_path() {
        let cfg = LifecycleConfig::new(one_model_plan()).with_warmup_runs(2);
        let mut sim = Sim::new(cfg, 64 << 20);
        sim.run_until(SimTime::ZERO);
        // First route finds nothing resident: the client parks and the
        // load begins.
        assert_eq!(sim.route("svc", 0), Route::Wait);
        let key = VersionKey { model: 0, version: 1 };
        assert_eq!(sim.mgr.state(key), VersionState::Loading);
        sim.drain_ticks();
        assert_eq!(sim.mgr.state(key), VersionState::Serving);
        assert_eq!(sim.woken, vec![0]);
        let warmups = sim
            .events
            .iter()
            .filter(|e| matches!(e, LifecycleEvent::Warmup { .. }))
            .count();
        assert_eq!(warmups, 2);
        // Woken client now gets a real issue.
        assert_eq!(sim.route("svc", 0), Route::Issue(key));
        assert_eq!(sim.mgr.versioned_name(key), "svc@v1");
    }

    #[test]
    fn eviction_makes_room_and_respects_budget() {
        // Three 1 MiB models on a pool that only fits two.
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment::new("a", renamed("a", models::mini::tiny(4))))
            .with_model(ModelDeployment::new("b", renamed("b", models::mini::tiny(4))))
            .with_model(ModelDeployment::new("c", renamed("c", models::mini::tiny(4))));
        let budget = 2 * (1 << 20) + (64 << 10);
        let mut sim = Sim::new(LifecycleConfig::new(plan), budget);
        sim.run_until(SimTime::ZERO);
        // Each woken client answers its wake with a real run (as the
        // engine does); an unanswered wake pins the version against
        // eviction.
        let (ka, kb) = (
            VersionKey { model: 0, version: 1 },
            VersionKey { model: 1, version: 1 },
        );
        assert_eq!(sim.route("a", 0), Route::Wait);
        sim.drain_ticks();
        assert_eq!(sim.route("a", 0), Route::Issue(ka));
        sim.finish(ka, SimDuration::from_micros(50));
        sim.now += SimDuration::from_millis(1);
        assert_eq!(sim.route("b", 1), Route::Wait);
        sim.drain_ticks();
        assert_eq!(sim.route("b", 1), Route::Issue(kb));
        sim.finish(kb, SimDuration::from_micros(50));
        // Loading the third evicts the stalest idle version ("a").
        sim.now += SimDuration::from_millis(1);
        assert_eq!(sim.route("c", 2), Route::Wait);
        assert!(sim.events.iter().any(|e| matches!(
            e,
            LifecycleEvent::Evicted { key: VersionKey { model: 0, version: 1 }, .. }
        )));
        sim.drain_ticks();
        assert_eq!(
            sim.mgr.state(VersionKey { model: 2, version: 1 }),
            VersionState::Serving
        );
        assert_eq!(
            sim.mgr.state(VersionKey { model: 0, version: 1 }),
            VersionState::Unloaded
        );
        // "a" reloads on demand afterwards, evicting someone else.
        sim.now += SimDuration::from_millis(1);
        assert_eq!(sim.route("a", 0), Route::Wait);
        sim.drain_ticks();
        assert_eq!(
            sim.mgr.state(VersionKey { model: 0, version: 1 }),
            VersionState::Serving
        );
    }

    #[test]
    fn eviction_tie_breaks_to_smallest_model_version_pair() {
        // Two identical idle versions with equal reload cost AND equal
        // last-used instant: the staleness-per-cost scores tie exactly, so
        // the victim must come from the deterministic (model, version)
        // order — the dense-vector scan, never hash-map iteration. Pin it:
        // the victim is the smallest pair, here model 0 ("a").
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment::new("a", renamed("a", models::mini::tiny(4))))
            .with_model(ModelDeployment::new("b", renamed("b", models::mini::tiny(4))))
            .with_model(ModelDeployment::new("c", renamed("c", models::mini::tiny(4))));
        let budget = 2 * (1 << 20) + (64 << 10);
        let mut sim = Sim::new(LifecycleConfig::new(plan), budget);
        sim.run_until(SimTime::ZERO);
        let (ka, kb) = (
            VersionKey { model: 0, version: 1 },
            VersionKey { model: 1, version: 1 },
        );
        assert_eq!(sim.route("a", 0), Route::Wait);
        sim.drain_ticks();
        assert_eq!(sim.route("a", 0), Route::Issue(ka));
        sim.now += SimDuration::from_millis(1);
        assert_eq!(sim.route("b", 1), Route::Wait);
        sim.drain_ticks();
        assert_eq!(sim.route("b", 1), Route::Issue(kb));
        // Finish both at the same instant: equal last_used, equal weights
        // (equal transfer cost) — a perfect tie.
        sim.now += SimDuration::from_millis(1);
        sim.finish(ka, SimDuration::from_micros(50));
        sim.finish(kb, SimDuration::from_micros(50));
        sim.now += SimDuration::from_millis(1);
        assert_eq!(sim.route("c", 2), Route::Wait);
        let victim = sim
            .events
            .iter()
            .find_map(|e| match e {
                LifecycleEvent::Evicted { key, .. } => Some(*key),
                _ => None,
            })
            .expect("the third load must evict someone");
        assert_eq!(victim, ka, "tied scores must evict the smallest (model, version)");
        assert_eq!(sim.mgr.state(kb), VersionState::Serving);
    }

    #[test]
    fn request_load_and_drain_drive_residency() {
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment::new("a", renamed("a", models::mini::tiny(4))))
            .with_model(ModelDeployment::new("b", renamed("b", models::mini::tiny(4))));
        let mut sim = Sim::new(LifecycleConfig::new(plan), 64 << 20);
        sim.run_until(SimTime::ZERO);
        let mi = sim.mgr.model_index("a").expect("managed");
        assert_eq!(sim.mgr.model_count(), 2);
        assert!(sim.mgr.serving_version(mi).is_none());
        // request_load starts the transfer; a second request is a no-op.
        let mut fx = Effects::default();
        assert!(sim.mgr.request_load(mi, sim.now, &mut sim.pool, &mut fx));
        assert!(!sim.mgr.request_load(mi, sim.now, &mut sim.pool, &mut fx));
        assert!(sim.mgr.is_loading(mi));
        sim.absorb(fx);
        sim.drain_ticks();
        let ka = VersionKey { model: 0, version: 1 };
        assert_eq!(sim.mgr.serving_version(mi), Some(ka));
        // In-flight runs do not refuse a drain, they only delay the
        // unload: issue one, drain, and the weights free at completion.
        assert_eq!(sim.route("a", 0), Route::Issue(ka));
        let mut fx = Effects::default();
        assert!(sim.mgr.request_drain(mi, sim.now, &mut sim.pool, &mut fx));
        assert!(!sim.mgr.request_drain(mi, sim.now, &mut sim.pool, &mut fx), "already draining");
        sim.absorb(fx);
        assert_eq!(sim.mgr.state(ka), VersionState::Draining);
        sim.finish(ka, SimDuration::from_micros(50));
        assert_eq!(sim.mgr.state(ka), VersionState::Unloaded);
        assert_eq!(sim.mgr.resident_bytes(), 0);
    }

    #[test]
    fn routing_during_a_drain_cancels_it() {
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment::new("a", renamed("a", models::mini::tiny(4))));
        let mut sim = Sim::new(LifecycleConfig::new(plan), 64 << 20);
        sim.run_until(SimTime::ZERO);
        let mi = sim.mgr.model_index("a").expect("managed");
        let mut fx = Effects::default();
        assert!(sim.mgr.request_load(mi, sim.now, &mut sim.pool, &mut fx));
        sim.absorb(fx);
        sim.drain_ticks();
        let ka = VersionKey { model: 0, version: 1 };
        // One run in flight keeps the drain pending rather than unloading.
        assert_eq!(sim.route("a", 0), Route::Issue(ka));
        let mut fx = Effects::default();
        assert!(sim.mgr.request_drain(mi, sim.now, &mut sim.pool, &mut fx));
        sim.absorb(fx);
        assert_eq!(sim.mgr.state(ka), VersionState::Draining);
        // New demand arrives before the last run finishes: the route
        // issues against the still-resident weights and cancels the drain.
        assert_eq!(sim.route("a", 1), Route::Issue(ka));
        assert_eq!(sim.mgr.state(ka), VersionState::Serving);
        sim.finish(ka, SimDuration::from_micros(50));
        sim.finish(ka, SimDuration::from_micros(50));
        assert_eq!(sim.mgr.state(ka), VersionState::Serving, "no unload after the cancel");
        assert!(sim.mgr.resident_bytes() > 0);
    }

    #[test]
    fn drain_refused_while_wake_credit_outstanding() {
        let mut sim = Sim::new(LifecycleConfig::new(one_model_plan()), 64 << 20);
        sim.run_until(SimTime::ZERO);
        assert_eq!(sim.route("svc", 0), Route::Wait);
        sim.drain_ticks();
        // Client 0 was woken but has not re-issued: its credit pins the
        // version, so a reconfiguration drain must be refused.
        assert_eq!(sim.woken, vec![0]);
        let mut fx = Effects::default();
        assert!(!sim.mgr.request_drain(0, sim.now, &mut sim.pool, &mut fx));
        // The engine re-routes the woken client to another device and
        // cancels the credit; now the drain goes through.
        sim.mgr.cancel_wake_credit(0);
        assert!(sim.mgr.request_drain(0, sim.now, &mut sim.pool, &mut fx));
        sim.absorb(fx);
        assert_eq!(
            sim.mgr.state(VersionKey { model: 0, version: 1 }),
            VersionState::Unloaded
        );
    }

    #[test]
    fn unanswered_wake_pins_version_until_the_client_issues() {
        // Budget fits exactly one model: "a" and "b" contend for the slot.
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment::new("a", renamed("a", models::mini::tiny(4))))
            .with_model(ModelDeployment::new("b", renamed("b", models::mini::tiny(4))));
        let budget = (1 << 20) + (64 << 10);
        let mut sim = Sim::new(LifecycleConfig::new(plan), budget);
        sim.run_until(SimTime::ZERO);
        let (ka, kb) = (
            VersionKey { model: 0, version: 1 },
            VersionKey { model: 1, version: 1 },
        );
        assert_eq!(sim.route("a", 0), Route::Wait);
        // "b" queues behind the full pool ("a" is Loading, not evictable).
        assert_eq!(sim.route("b", 1), Route::Wait);
        sim.drain_ticks();
        // "a" finished warming in the same ticks that retry "b"'s pending
        // load; the un-answered wake of client 0 keeps "a" resident, or
        // the pair would evict each other forever without serving a run.
        assert_eq!(sim.mgr.state(ka), VersionState::Serving);
        assert_eq!(sim.woken, vec![0]);
        assert_eq!(sim.route("a", 0), Route::Issue(ka));
        // The wake credit is consumed; once the run finishes and "a" goes
        // idle, the queued "b" load may reclaim the slot.
        sim.finish(ka, SimDuration::from_micros(50));
        assert!(sim.events.iter().any(|e| matches!(
            e,
            LifecycleEvent::Evicted { key: VersionKey { model: 0, version: 1 }, .. }
        )));
        sim.drain_ticks();
        assert_eq!(sim.mgr.state(kb), VersionState::Serving);
        assert_eq!(sim.woken, vec![0, 1]);
    }

    fn canary_run(regressed: bool) -> (Vec<LifecycleEvent>, LifecycleManager) {
        // v2 publishes at 10 ms; healthy v2 matches v1's latency, the
        // regressed one reports 10× the latency.
        let plan = DeploymentPlan::new().with_model(
            ModelDeployment::new("svc", renamed("svc", models::mini::tiny(4)))
                .with_version(renamed("svc", models::mini::tiny(4)), SimTime::from_millis(10)),
        );
        let cfg = LifecycleConfig::new(plan).with_warmup_runs(1);
        let mut sim = Sim::new(cfg, 64 << 20);
        sim.run_until(SimTime::ZERO);
        assert_eq!(sim.route("svc", 0), Route::Wait);
        sim.run_until(SimTime::from_millis(9));
        let v1 = VersionKey { model: 0, version: 1 };
        let v2 = VersionKey { model: 0, version: 2 };
        assert_eq!(sim.mgr.state(v1), VersionState::Serving);
        // Publish v2 and let it load + warm.
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(sim.mgr.state(v2), VersionState::Serving);
        // Issue runs until the canary decides; finish each immediately.
        for i in 0..200u32 {
            sim.now += SimDuration::from_micros(50);
            let Route::Issue(key) = sim.route("svc", i % 4) else {
                panic!("serving model must issue")
            };
            let lat = if key == v2 && regressed {
                SimDuration::from_micros(2_000)
            } else {
                SimDuration::from_micros(200)
            };
            sim.finish(key, lat);
            let decided = sim.events.iter().any(|e| {
                matches!(e, LifecycleEvent::Promote { .. } | LifecycleEvent::Rollback { .. })
            });
            if decided {
                break;
            }
        }
        sim.drain_ticks();
        (sim.events, sim.mgr)
    }

    #[test]
    fn canary_promotes_healthy_candidate() {
        let (events, mgr) = canary_run(false);
        assert!(events.iter().any(|e| matches!(
            e,
            LifecycleEvent::Promote { key: VersionKey { model: 0, version: 2 }, .. }
        )));
        // The old incumbent drained and unloaded (nothing was in flight).
        assert!(events.iter().any(|e| matches!(
            e,
            LifecycleEvent::Unloaded { key: VersionKey { model: 0, version: 1 }, .. }
        )));
        assert_eq!(mgr.state(VersionKey { model: 0, version: 2 }), VersionState::Serving);
    }

    #[test]
    fn canary_rolls_back_regressed_candidate() {
        let (events, mgr) = canary_run(true);
        let rolled = events
            .iter()
            .find_map(|e| match e {
                LifecycleEvent::Rollback { key, cand_us, base_us } => {
                    Some((*key, *cand_us, *base_us))
                }
                _ => None,
            })
            .expect("regressed candidate must roll back");
        assert_eq!(rolled.0, VersionKey { model: 0, version: 2 });
        assert!(rolled.1 > rolled.2, "candidate latency must exceed incumbent");
        assert_eq!(mgr.state(VersionKey { model: 0, version: 1 }), VersionState::Serving);
        assert_eq!(mgr.state(VersionKey { model: 0, version: 2 }), VersionState::Unloaded);
    }

    #[test]
    fn draining_version_waits_for_inflight_runs() {
        let plan = DeploymentPlan::new().with_model(
            ModelDeployment::new("svc", renamed("svc", models::mini::tiny(4)))
                .with_version(renamed("svc", models::mini::tiny(4)), SimTime::from_millis(10)),
        );
        let cfg = LifecycleConfig::new(plan).with_warmup_runs(0);
        let mut sim = Sim::new(cfg, 64 << 20);
        sim.run_until(SimTime::ZERO);
        assert_eq!(sim.route("svc", 0), Route::Wait);
        sim.run_until(SimTime::from_millis(5));
        let v1 = VersionKey { model: 0, version: 1 };
        // Keep one run of v1 in flight across the canary decision.
        assert_eq!(sim.route("svc", 9), Route::Issue(v1));
        sim.run_until(SimTime::from_millis(20));
        // Decide the canary with one v1 run still open.
        for i in 0..200u32 {
            sim.now += SimDuration::from_micros(50);
            let Route::Issue(key) = sim.route("svc", i % 4) else {
                panic!("serving model must issue")
            };
            sim.finish(key, SimDuration::from_micros(200));
            if sim.events.iter().any(|e| matches!(e, LifecycleEvent::Promote { .. })) {
                break;
            }
        }
        assert_eq!(sim.mgr.state(v1), VersionState::Draining);
        assert!(!sim
            .events
            .iter()
            .any(|e| matches!(e, LifecycleEvent::Unloaded { .. })));
        // The straggler finishes: only now does v1 unload.
        sim.finish(v1, SimDuration::from_micros(400));
        assert_eq!(sim.mgr.state(v1), VersionState::Unloaded);
        assert!(sim.events.iter().any(|e| matches!(
            e,
            LifecycleEvent::Unloaded { key: VersionKey { model: 0, version: 1 }, .. }
        )));
    }

    #[test]
    fn oversized_version_rejected_up_front() {
        let cfg = LifecycleConfig::new(one_model_plan());
        let err = LifecycleManager::new(&cfg, 1024).unwrap_err();
        assert!(matches!(err, LifecycleError::OversizedVersion { budget: 1024, .. }));
    }
}
