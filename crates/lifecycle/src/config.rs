//! Deployment plans and manager configuration.

use crate::{LifecycleError, ProfileBinder};
use models::LoadedModel;
use simtime::SimTime;
use std::sync::Arc;

/// One version of a served model: the servable itself plus the instant the
/// rollout controller starts aspiring to it (TF-Serving's Source emitting a
/// new aspired version).
#[derive(Debug, Clone)]
pub struct VersionSpec {
    /// The servable. Its name must equal the deployment's served name; the
    /// manager keys profiles and trace events by `"{name}@v{n}"`.
    pub model: LoadedModel,
    /// When this version is published (becomes aspired).
    pub publish_at: SimTime,
}

impl VersionSpec {
    /// A version published at time zero.
    pub fn new(model: LoadedModel) -> Self {
        VersionSpec { model, publish_at: SimTime::ZERO }
    }

    /// Sets the publish instant.
    pub fn published_at(mut self, at: SimTime) -> Self {
        self.publish_at = at;
        self
    }
}

/// A named model with its ordered version history (version numbers are
/// 1-based and monotonically increasing, as in TF-Serving).
#[derive(Debug, Clone)]
pub struct ModelDeployment {
    /// The served name clients address (their `ClientSpec` model name).
    pub name: String,
    /// Versions in publication order; `versions[k]` is version `k + 1`.
    pub versions: Vec<VersionSpec>,
}

impl ModelDeployment {
    /// A deployment with one initial version published at time zero.
    pub fn new(name: impl Into<String>, v1: LoadedModel) -> Self {
        ModelDeployment {
            name: name.into(),
            versions: vec![VersionSpec::new(v1)],
        }
    }

    /// Appends the next version, published at `at`.
    pub fn with_version(mut self, model: LoadedModel, at: SimTime) -> Self {
        self.versions.push(VersionSpec::new(model).published_at(at));
        self
    }
}

/// The versioned model registry: every deployment the manager owns.
#[derive(Debug, Clone, Default)]
pub struct DeploymentPlan {
    /// Deployments in declaration order (the deterministic scan order for
    /// publishes and eviction).
    pub models: Vec<ModelDeployment>,
}

impl DeploymentPlan {
    /// An empty plan.
    pub fn new() -> Self {
        DeploymentPlan::default()
    }

    /// Adds a deployment.
    pub fn with_model(mut self, deployment: ModelDeployment) -> Self {
        self.models.push(deployment);
        self
    }

    /// Validates the registry invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`LifecycleError`] found: empty version lists,
    /// duplicate served names, version-name or batch mismatches, or
    /// regressing publish times.
    pub fn validate(&self) -> Result<(), LifecycleError> {
        for (i, dep) in self.models.iter().enumerate() {
            if dep.versions.is_empty() {
                return Err(LifecycleError::NoVersions { model: dep.name.clone() });
            }
            if self.models[..i].iter().any(|d| d.name == dep.name) {
                return Err(LifecycleError::DuplicateModel { model: dep.name.clone() });
            }
            let batch = dep.versions[0].model.batch();
            let mut last_publish = SimTime::ZERO;
            for (k, v) in dep.versions.iter().enumerate() {
                let version = (k + 1) as u32;
                if v.model.name() != dep.name {
                    return Err(LifecycleError::NameMismatch {
                        model: dep.name.clone(),
                        version,
                        got: v.model.name().to_string(),
                    });
                }
                if v.model.batch() != batch {
                    return Err(LifecycleError::BatchMismatch {
                        model: dep.name.clone(),
                        version,
                        expected: batch,
                        got: v.model.batch(),
                    });
                }
                if v.publish_at < last_publish {
                    return Err(LifecycleError::PublishOrder {
                        model: dep.name.clone(),
                        version,
                    });
                }
                last_publish = v.publish_at;
            }
        }
        Ok(())
    }
}

/// Canary rollout parameters.
#[derive(Debug, Clone, Copy)]
pub struct CanaryConfig {
    /// Every `stride`-th new run of a model under canary goes to the
    /// candidate version (the rest stay on the incumbent) — a
    /// deterministic traffic split.
    pub stride: u64,
    /// Completed runs each arm must observe before the promote/rollback
    /// decision.
    pub min_runs: u32,
    /// The candidate is promoted iff its mean run latency stays within
    /// `(1 + tolerance)` × the incumbent's mean; otherwise it is rolled
    /// back.
    pub tolerance: f64,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        CanaryConfig { stride: 4, min_runs: 6, tolerance: 0.25 }
    }
}

impl CanaryConfig {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `min_runs` is zero, or `tolerance` is
    /// negative.
    pub fn validate(&self) {
        assert!(self.stride >= 1, "canary stride must be at least 1");
        assert!(self.min_runs >= 1, "canary needs at least one run per arm");
        assert!(self.tolerance >= 0.0, "negative canary tolerance");
    }
}

/// Configuration of the lifecycle manager.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// The versioned model registry.
    pub plan: DeploymentPlan,
    /// Effective PCIe bandwidth for weight loads, in gigabytes/second —
    /// the source of the simulated load latency
    /// ([`gpusim::MemoryPool::transfer_time`]).
    pub load_gbps: f64,
    /// Warm-up runs a freshly loaded version executes (one graph pass
    /// each) before it starts serving — TF-Serving's loader warm-up.
    pub warmup_runs: u32,
    /// Canary rollout parameters.
    pub canary: CanaryConfig,
    /// Profile wiring into the scheduling layer; `None` runs without
    /// per-version cost profiles (baseline schedulers).
    pub binder: Option<Arc<dyn ProfileBinder>>,
}

impl LifecycleConfig {
    /// A manager over `plan` with default load bandwidth (12 GB/s), two
    /// warm-up runs and default canary parameters.
    pub fn new(plan: DeploymentPlan) -> Self {
        LifecycleConfig {
            plan,
            load_gbps: 12.0,
            warmup_runs: 2,
            canary: CanaryConfig::default(),
            binder: None,
        }
    }

    /// Sets the effective load bandwidth.
    pub fn with_load_gbps(mut self, gbps: f64) -> Self {
        self.load_gbps = gbps;
        self
    }

    /// Sets the warm-up run count.
    pub fn with_warmup_runs(mut self, runs: u32) -> Self {
        self.warmup_runs = runs;
        self
    }

    /// Sets the canary parameters.
    pub fn with_canary(mut self, canary: CanaryConfig) -> Self {
        self.canary = canary;
        self
    }

    /// Wires the scheduler profile binder.
    pub fn with_binder(mut self, binder: Arc<dyn ProfileBinder>) -> Self {
        self.binder = Some(binder);
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the plan or canary parameters are invalid, or the load
    /// bandwidth is not positive.
    pub fn validate(&self) {
        if let Err(e) = self.plan.validate() {
            panic!("invalid deployment plan: {e}");
        }
        assert!(self.load_gbps > 0.0, "load bandwidth must be positive");
        self.canary.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimDuration;

    fn named(name: &str, batch: u64) -> LoadedModel {
        let m = models::mini::tiny(batch);
        LoadedModel::from_parts(
            name,
            None,
            m.batch(),
            std::sync::Arc::clone(m.graph()),
            m.weights_bytes(),
            m.activation_bytes(),
        )
    }

    #[test]
    fn valid_plan_passes() {
        let plan = DeploymentPlan::new().with_model(
            ModelDeployment::new("svc", named("svc", 4))
                .with_version(named("svc", 4), SimTime::ZERO + SimDuration::from_millis(5)),
        );
        plan.validate().expect("valid plan");
        LifecycleConfig::new(plan).validate();
    }

    #[test]
    fn empty_versions_rejected() {
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment { name: "svc".into(), versions: vec![] });
        assert_eq!(
            plan.validate().unwrap_err(),
            LifecycleError::NoVersions { model: "svc".into() }
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment::new("svc", named("svc", 4)))
            .with_model(ModelDeployment::new("svc", named("svc", 4)));
        assert_eq!(
            plan.validate().unwrap_err(),
            LifecycleError::DuplicateModel { model: "svc".into() }
        );
    }

    #[test]
    fn name_mismatch_rejected() {
        let plan = DeploymentPlan::new()
            .with_model(ModelDeployment::new("svc", named("other", 4)));
        assert!(matches!(
            plan.validate().unwrap_err(),
            LifecycleError::NameMismatch { version: 1, .. }
        ));
    }

    #[test]
    fn batch_mismatch_rejected() {
        let plan = DeploymentPlan::new().with_model(
            ModelDeployment::new("svc", named("svc", 4))
                .with_version(named("svc", 8), SimTime::ZERO),
        );
        assert!(matches!(
            plan.validate().unwrap_err(),
            LifecycleError::BatchMismatch { version: 2, expected: 4, got: 8, .. }
        ));
    }

    #[test]
    fn publish_regression_rejected() {
        let plan = DeploymentPlan::new().with_model(
            ModelDeployment::new("svc", named("svc", 4))
                .with_version(named("svc", 4), SimTime::from_millis(4))
                .with_version(named("svc", 4), SimTime::from_millis(2)),
        );
        assert!(matches!(
            plan.validate().unwrap_err(),
            LifecycleError::PublishOrder { version: 3, .. }
        ));
    }
}
