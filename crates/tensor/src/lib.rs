#![deny(missing_docs)]

//! Tensor shapes, element types and memory accounting.
//!
//! The Olympian scheduler never touches tensor *values* — it schedules whole
//! jobs — but the serving stack needs shapes and byte sizes to model:
//!
//! * batching (a batch dimension on every input),
//! * GPU memory pressure (the scalability limit in §4.3 of the paper is GPU
//!   memory on a GTX 1080 Ti), and
//! * realistic per-node work estimates in the model zoo.
//!
//! ```
//! use tensor::{DType, Shape};
//!
//! let activations = Shape::nchw(100, 64, 56, 56);
//! assert_eq!(activations.elements(), 100 * 64 * 56 * 56);
//! assert_eq!(activations.byte_size(DType::F32), activations.elements() * 4);
//! ```

mod dtype;
mod shape;

pub use dtype::DType;
pub use shape::{Shape, ShapeError};

/// Describes a tensor without storing its data: a shape plus element type.
///
/// ```
/// use tensor::{DType, Shape, TensorSpec};
///
/// let spec = TensorSpec::new(Shape::vector(1000), DType::F16);
/// assert_eq!(spec.byte_size(), 2000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorSpec {
    shape: Shape,
    dtype: DType,
}

impl TensorSpec {
    /// Creates a spec from a shape and element type.
    pub fn new(shape: Shape, dtype: DType) -> Self {
        TensorSpec { shape, dtype }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Total bytes needed to store the tensor densely.
    pub fn byte_size(&self) -> u64 {
        self.shape.byte_size(self.dtype)
    }

    /// Returns a copy with the leading (batch) dimension replaced.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Scalar`] if the shape has no dimensions.
    pub fn with_batch(&self, batch: u64) -> Result<TensorSpec, ShapeError> {
        Ok(TensorSpec {
            shape: self.shape.with_batch(batch)?,
            dtype: self.dtype,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_byte_size_combines_shape_and_dtype() {
        let spec = TensorSpec::new(Shape::nchw(2, 3, 4, 5), DType::F64);
        assert_eq!(spec.byte_size(), 2 * 3 * 4 * 5 * 8);
    }

    #[test]
    fn with_batch_rewrites_leading_dim() {
        let spec = TensorSpec::new(Shape::nchw(1, 3, 224, 224), DType::F32);
        let batched = spec.with_batch(64).unwrap();
        assert_eq!(batched.shape().dims()[0], 64);
        assert_eq!(batched.byte_size(), 64 * 3 * 224 * 224 * 4);
    }

    #[test]
    fn with_batch_on_scalar_errors() {
        let spec = TensorSpec::new(Shape::scalar(), DType::F32);
        assert!(spec.with_batch(4).is_err());
    }
}
