//! Tensor shapes.

use crate::DType;
use std::fmt;

/// Error produced by shape operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Operation requires at least one dimension but the shape is a scalar.
    Scalar,
    /// Dimensions do not match for the attempted operation.
    Mismatch {
        /// The dimensions that were expected.
        expected: Vec<u64>,
        /// The dimensions that were found.
        found: Vec<u64>,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Scalar => write!(f, "operation requires a non-scalar shape"),
            ShapeError::Mismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected:?}, found {found:?}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// A dense tensor shape: an ordered list of dimension extents.
///
/// ```
/// use tensor::Shape;
///
/// let s = Shape::new(vec![10, 3, 224, 224]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.elements(), 10 * 3 * 224 * 224);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<u64>,
}

impl Shape {
    /// Creates a shape from its dimensions. An empty vector is a scalar.
    pub fn new(dims: Vec<u64>) -> Self {
        Shape { dims }
    }

    /// A rank-0 (scalar) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// A rank-1 shape with `n` elements.
    pub fn vector(n: u64) -> Self {
        Shape { dims: vec![n] }
    }

    /// A rank-2 shape.
    pub fn matrix(rows: u64, cols: u64) -> Self {
        Shape { dims: vec![rows, cols] }
    }

    /// The standard image-batch layout: batch, channels, height, width.
    pub fn nchw(n: u64, c: u64, h: u64, w: u64) -> Self {
        Shape { dims: vec![n, c, h, w] }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (1 for scalars).
    pub fn elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Bytes needed to store the tensor densely with the given element type.
    pub fn byte_size(&self, dtype: DType) -> u64 {
        self.elements() * dtype.byte_width()
    }

    /// The leading dimension, conventionally the batch size.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Scalar`] for rank-0 shapes.
    pub fn batch(&self) -> Result<u64, ShapeError> {
        self.dims.first().copied().ok_or(ShapeError::Scalar)
    }

    /// Returns a copy with the leading dimension replaced by `batch`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::Scalar`] for rank-0 shapes.
    pub fn with_batch(&self, batch: u64) -> Result<Shape, ShapeError> {
        if self.dims.is_empty() {
            return Err(ShapeError::Scalar);
        }
        let mut dims = self.dims.clone();
        dims[0] = batch;
        Ok(Shape { dims })
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<u64>> for Shape {
    fn from(dims: Vec<u64>) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.elements(), 1);
        assert!(s.batch().is_err());
    }

    #[test]
    fn element_counts_multiply() {
        assert_eq!(Shape::nchw(2, 3, 4, 5).elements(), 120);
        assert_eq!(Shape::matrix(7, 9).elements(), 63);
        assert_eq!(Shape::vector(11).elements(), 11);
    }

    #[test]
    fn batch_reads_leading_dim() {
        assert_eq!(Shape::nchw(32, 3, 8, 8).batch().unwrap(), 32);
    }

    #[test]
    fn with_batch_only_changes_leading_dim() {
        let s = Shape::nchw(1, 3, 8, 8).with_batch(16).unwrap();
        assert_eq!(s.dims(), &[16, 3, 8, 8]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::nchw(1, 2, 3, 4).to_string(), "[1x2x3x4]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn byte_size_uses_dtype_width() {
        assert_eq!(Shape::vector(10).byte_size(DType::F16), 20);
    }
}
