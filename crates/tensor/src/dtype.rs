//! Element types.

use std::fmt;

/// Element type of a tensor.
///
/// Only the types the model zoo actually uses are represented; the variant
/// set can grow without breaking users because the enum is `#[non_exhaustive]`.
///
/// ```
/// use tensor::DType;
///
/// assert_eq!(DType::F32.byte_width(), 4);
/// assert!(DType::F16.is_float());
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float — the default for inference weights and activations.
    #[default]
    F32,
    /// 16-bit IEEE float.
    F16,
    /// 64-bit IEEE float.
    F64,
    /// Signed 32-bit integer (indices, labels).
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 8-bit integer (raw image bytes before decode).
    U8,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn byte_width(self) -> u64 {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 => 2,
            DType::F64 | DType::I64 => 8,
            DType::U8 => 1,
        }
    }

    /// Whether the type is a floating-point type.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F16 | DType::F64)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::U8 => "u8",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(DType::F32.byte_width(), 4);
        assert_eq!(DType::F16.byte_width(), 2);
        assert_eq!(DType::F64.byte_width(), 8);
        assert_eq!(DType::I32.byte_width(), 4);
        assert_eq!(DType::I64.byte_width(), 8);
        assert_eq!(DType::U8.byte_width(), 1);
    }

    #[test]
    fn float_classification() {
        assert!(DType::F32.is_float());
        assert!(!DType::I64.is_float());
        assert!(!DType::U8.is_float());
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::U8.to_string(), "u8");
    }
}
