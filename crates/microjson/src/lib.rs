#![deny(missing_docs)]

//! A small, dependency-free JSON library for the repo's on-disk formats
//! (servables, profile stores, `BENCH_engine.json`).
//!
//! The workspace builds in hermetic environments with no registry access, so
//! serialization cannot rely on external crates. This module provides the
//! subset of JSON the project needs: a [`Value`] tree, a strict recursive
//! descent parser, and a compact writer whose output is byte-stable (object
//! keys keep insertion order, integers print without an exponent).
//!
//! ```
//! use microjson::Value;
//!
//! let v = Value::parse(r#"{"name":"resnet","batch":32,"gpu":true}"#).unwrap();
//! assert_eq!(v.get("batch").and_then(Value::as_u64), Some(32));
//! assert_eq!(v.to_string(), r#"{"name":"resnet","batch":32,"gpu":true}"#);
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts; beyond this the input is
/// rejected rather than risking a stack overflow.
const MAX_DEPTH: u32 = 128;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer that fits in `u64` (the common case for the
    /// repo's counters, costs and nanosecond durations).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object field, reporting a decode error when the
    /// value is not an object or the field is absent.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::decode(format!("missing field {key:?}")))
    }

    /// Parses a JSON document. Trailing non-whitespace input is an error.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Reads everything from `reader` and parses it.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on I/O failure, non-UTF-8 input or malformed JSON.
    pub fn from_reader<R: std::io::Read>(mut reader: R) -> Result<Value, Error> {
        let mut text = String::new();
        reader
            .read_to_string(&mut text)
            .map_err(|e| Error::decode(format!("read failed: {e}")))?;
        Value::parse(&text)
    }

    /// Serializes compactly (serde_json-style: no spaces) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => {
                let mut buf = [0u8; 20];
                out.push_str(format_u64(*n, &mut buf));
            }
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => write_f64(*x, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::UInt(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ascii")
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's Display prints the shortest representation that
        // round-trips; integral floats gain a ".0" to stay floats on read.
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the failure, when known (parse errors).
    pub pos: Option<usize>,
    msg: String,
}

impl Error {
    /// A structural decode error (missing field, wrong type) with no
    /// associated input position.
    pub fn decode(msg: impl Into<String>) -> Error {
        Error {
            pos: None,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} at byte {pos}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            pos: Some(self.pos),
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut s)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, s: &mut String) -> Result<(), Error> {
        let b = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{8}'),
            b'f' => s.push('\u{c}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired surrogate"));
                } else {
                    hi
                };
                s.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("malformed number"));
        }
        if self.peek() == Some(b'0') {
            // JSON forbids leading zeros: "0" is fine, "01" is not.
            self.pos += 1;
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("leading zero in number"));
            }
        } else {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if integral {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_string(), text, "roundtrip of {text}");
        }
    }

    #[test]
    fn numbers_classify() {
        assert_eq!(Value::parse("18446744073709551615").unwrap(), Value::UInt(u64::MAX));
        assert_eq!(Value::parse("-3").unwrap(), Value::Int(-3));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(Value::parse("7").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn object_preserves_order_and_nests() {
        let text = r#"{"b":[1,2,{"c":null}],"a":{"x":true}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(
            v.get("b").unwrap().as_array().unwrap()[2]
                .get("c")
                .unwrap(),
            &Value::Null
        );
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\" } ").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2],"b":"x"}"#);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{8}\u{c}\r\u{1}ü".into());
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Value::parse(r#""é😀""#).unwrap(),
            Value::Str("é😀".into())
        );
        assert!(Value::parse(r#""\ud800""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in [
            "", "nul", "{", "[1,", "{\"a\"}", "{\"a\":1,}", "01x", "01", "-01", "1 2", "\"",
            "--1", "+1", "[1]]",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn every_control_char_roundtrips_through_escapes() {
        let raw: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let v = Value::Str(raw.clone());
        let text = v.to_string();
        // The wire form is pure ASCII with nothing unescaped below 0x20.
        assert!(text.bytes().all(|b| (0x20..0x80).contains(&b)));
        assert_eq!(Value::parse(&text).unwrap(), v);
        // The short forms are preferred where JSON defines them.
        for esc in ["\\b", "\\t", "\\n", "\\f", "\\r", "\\u0000", "\\u001f"] {
            assert!(text.contains(esc), "missing {esc} in {text}");
        }
        // Raw (unescaped) control characters in input are rejected.
        assert!(Value::parse("\"\u{1}\"").is_err());
        assert!(Value::parse("\"\n\"").is_err());
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        assert_eq!(Value::parse(r#""\u0041""#).unwrap(), Value::Str("A".into()));
        assert_eq!(Value::parse(r#""\u00e9""#).unwrap(), Value::Str("é".into()));
        assert_eq!(
            Value::parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("😀".into())
        );
        // A high surrogate must be followed by an escaped low half.
        assert!(Value::parse(r#""\ud83dx""#).is_err());
        assert!(Value::parse(r#""\ud83dA""#).is_err());
        assert!(Value::parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn unicode_text_roundtrips_byte_stable() {
        // Multibyte text is written raw (not \u-escaped); a parse/write
        // cycle of the wire form must reproduce it byte for byte.
        let v = Value::Str("héllo ✓ 😀 \u{7f} end".into());
        let text = v.to_string();
        let reparsed = Value::parse(&text).unwrap();
        assert_eq!(reparsed, v);
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn escaped_and_raw_keys_roundtrip_in_objects() {
        let v = Value::Object(vec![
            ("tab\tkey".into(), Value::UInt(1)),
            ("quote\"key".into(), Value::UInt(2)),
            ("emoji😀".into(), Value::UInt(3)),
        ]);
        let text = v.to_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("tab\tkey").unwrap().as_u64(), Some(1));
        assert_eq!(back.get("quote\"key").unwrap().as_u64(), Some(2));
        assert_eq!(back.get("emoji😀").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn field_reports_missing() {
        let v = Value::parse(r#"{"a":1}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_u64(), Some(1));
        let err = v.field("b").unwrap_err();
        assert!(err.to_string().contains("\"b\""));
    }

    #[test]
    fn float_formatting_stays_a_float() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn from_reader_reads_bytes() {
        let v = Value::from_reader(&br#"{"k":9}"#[..]).unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(9));
    }
}
