//! Miniature models for fast tests.
//!
//! The calibrated zoo graphs carry 12k–24k nodes — ideal for experiments,
//! slow for debug-mode unit tests. These miniatures keep the same structural
//! features (CPU input stage, branching GPU blocks, bookkeeping leaves,
//! classification tail) at a few dozen nodes and microsecond durations.

use crate::LoadedModel;
use dataflow::{Graph, GraphBuilder, NodeId, NodeTemplate, OpKind};
use simtime::SimDuration;
use std::sync::Arc;

/// A ~20-node single-branch model: decode → 16-GPU-node chain → softmax.
///
/// Total GPU time ≈ 16 × 10 µs = 160 µs per run.
pub fn tiny(batch: u64) -> LoadedModel {
    chain_model("mini-tiny", batch, 16, SimDuration::from_micros(10))
}

/// A ~64-GPU-node chain with 25 µs nodes (≈1.6 ms of GPU time per run) —
/// big enough that multi-quantum scheduling effects show up in tests.
pub fn small(batch: u64) -> LoadedModel {
    chain_model("mini-small", batch, 64, SimDuration::from_micros(25))
}

/// A branching miniature: 8 blocks of 2 branches × 3 nodes, exercising
/// joins, parallel readiness and concat joins.
pub fn branchy(batch: u64) -> LoadedModel {
    let mut b = GraphBuilder::new();
    let decode = b.add_node(NodeTemplate::cpu(
        "decode",
        OpKind::InputDecode,
        SimDuration::from_micros(5),
    ));
    let mut frontier = {
        let stem = gpu(&mut b, "stem", OpKind::Conv2d, 20);
        b.add_edge(decode, stem).expect("fresh edge");
        stem
    };
    for blk in 0..8 {
        let mut ends = Vec::new();
        for br in 0..2 {
            let mut prev = frontier;
            for i in 0..3 {
                let id = gpu(&mut b, &format!("b{blk}_{br}_{i}"), OpKind::Conv2d, 15);
                b.add_edge(prev, id).expect("fresh edge");
                prev = id;
            }
            ends.push(prev);
        }
        let join = gpu(&mut b, &format!("b{blk}_join"), OpKind::Concat, 5);
        for e in ends {
            b.add_edge(e, join).expect("fresh edge");
        }
        let leaf = b.add_node(NodeTemplate::cpu(
            format!("bk{blk}"),
            OpKind::Bookkeeping,
            SimDuration::from_nanos(500),
        ));
        b.add_edge(join, leaf).expect("fresh edge");
        frontier = join;
    }
    let sm = gpu(&mut b, "softmax", OpKind::Softmax, 8);
    b.add_edge(frontier, sm).expect("fresh edge");
    finish("mini-branchy", batch, b.build().expect("DAG by construction"))
}

/// A CPU-only miniature: preprocessing pipelines exist that never touch the
/// GPU. Exercises the scheduler's zero-GPU-duration edge (such a job never
/// accrues cost, so its turn only ends when it completes).
pub fn cpu_only(batch: u64) -> LoadedModel {
    let mut b = GraphBuilder::new();
    let mut prev = b.add_node(NodeTemplate::cpu(
        "decode",
        OpKind::InputDecode,
        SimDuration::from_micros(10),
    ));
    for i in 0..8 {
        let id = b.add_node(NodeTemplate::cpu(
            format!("cpu{i}"),
            OpKind::Bookkeeping,
            SimDuration::from_micros(20),
        ));
        b.add_edge(prev, id).expect("fresh edge");
        prev = id;
    }
    finish("mini-cpu-only", batch, b.build().expect("DAG by construction"))
}

fn gpu(b: &mut GraphBuilder, name: &str, op: OpKind, micros: u64) -> NodeId {
    b.add_node(NodeTemplate::gpu_auto_cost(
        name,
        op,
        SimDuration::from_micros(micros),
    ))
}

fn chain_model(name: &str, batch: u64, gpu_len: usize, node_dur: SimDuration) -> LoadedModel {
    let mut b = GraphBuilder::new();
    let decode = b.add_node(NodeTemplate::cpu(
        "decode",
        OpKind::InputDecode,
        SimDuration::from_micros(5),
    ));
    let mut prev = decode;
    for i in 0..gpu_len {
        let id = b.add_node(NodeTemplate::gpu_auto_cost(
            format!("g{i}"),
            OpKind::Conv2d,
            node_dur,
        ));
        b.add_edge(prev, id).expect("fresh edge");
        prev = id;
    }
    finish(name, batch, b.build().expect("DAG by construction"))
}

fn finish(name: &str, batch: u64, graph: Graph) -> LoadedModel {
    LoadedModel::from_parts(
        name,
        None,
        batch,
        Arc::new(graph),
        1024 * 1024,
        64 * 1024 * batch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_tiny() {
        let m = tiny(4);
        assert!(m.graph().node_count() < 32);
        assert_eq!(m.graph().gpu_node_count(), 16);
        assert_eq!(m.graph().total_gpu_time(), SimDuration::from_micros(160));
    }

    #[test]
    fn branchy_has_joins() {
        let m = branchy(1);
        let g = m.graph();
        assert!(g.node_ids().any(|id| g.parent_count(id) == 2), "has a join");
        assert_eq!(g.topo_order().len(), g.node_count());
    }

    #[test]
    fn cpu_only_has_no_gpu_nodes() {
        let m = cpu_only(2);
        assert_eq!(m.graph().gpu_node_count(), 0);
        assert!(m.graph().total_cpu_time() > SimDuration::ZERO);
        assert_eq!(m.graph().total_gpu_time(), SimDuration::ZERO);
    }

    #[test]
    fn small_gpu_time() {
        let m = small(1);
        assert_eq!(m.graph().total_gpu_time(), SimDuration::from_micros(64 * 25));
    }
}
