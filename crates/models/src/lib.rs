#![deny(missing_docs)]

//! The model zoo: synthetic dataflow graphs calibrated to the seven DNNs the
//! paper evaluates.
//!
//! The paper's Table 2 fixes, per model, the total node count, GPU-node
//! count and single-job runtime at a reference batch size; Figure 4 fixes
//! the node-duration distribution. The generators here reproduce those
//! aggregates with deterministic synthetic graphs:
//!
//! * graph *structure* is fixed per model (independent of batch size, as in
//!   TensorFlow),
//! * node *durations* scale affinely with batch size (a fixed launch part
//!   plus a batch-proportional part),
//! * node *costs* follow each op's cost density, landing whole-model
//!   cost/duration rates near the paper's ≈15× ratio.
//!
//! ```
//! use models::{load, ModelKind};
//!
//! let m = load(ModelKind::InceptionV4, 100)?;
//! assert_eq!(m.kind(), Some(ModelKind::InceptionV4));
//! assert!(m.graph().gpu_node_count() > 10_000);
//! # Ok::<(), models::ModelError>(())
//! ```

mod calibration;
mod gen;
pub mod mini;
pub mod servable;

pub use calibration::{spec, Calibration};

use dataflow::Graph;
use std::fmt;
use std::sync::Arc;

/// The seven DNN models of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Inception-v4 (the paper's default workload).
    InceptionV4,
    /// GoogLeNet.
    GoogLeNet,
    /// AlexNet.
    AlexNet,
    /// VGG-16.
    Vgg,
    /// ResNet-50.
    ResNet50,
    /// ResNet-101.
    ResNet101,
    /// ResNet-152 (the paper's heterogeneous-workload partner).
    ResNet152,
}

impl ModelKind {
    /// All models, in Table 2 order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::InceptionV4,
        ModelKind::GoogLeNet,
        ModelKind::AlexNet,
        ModelKind::Vgg,
        ModelKind::ResNet50,
        ModelKind::ResNet101,
        ModelKind::ResNet152,
    ];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::InceptionV4 => "inception-v4",
            ModelKind::GoogLeNet => "googlenet",
            ModelKind::AlexNet => "alexnet",
            ModelKind::Vgg => "vgg",
            ModelKind::ResNet50 => "resnet-50",
            ModelKind::ResNet101 => "resnet-101",
            ModelKind::ResNet152 => "resnet-152",
        }
    }

    /// The batch size Table 2 characterizes this model at.
    pub fn reference_batch(self) -> u64 {
        spec(self).reference_batch
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from model loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Batch size must be at least 1.
    ZeroBatch,
    /// Batch size exceeds what the serving system supports (guards against
    /// pathological memory sizing).
    BatchTooLarge {
        /// The requested batch.
        requested: u64,
        /// The maximum supported batch.
        max: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroBatch => write!(f, "batch size must be at least 1"),
            ModelError::BatchTooLarge { requested, max } => {
                write!(f, "batch size {requested} exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Largest batch size the zoo will generate.
pub const MAX_BATCH: u64 = 1024;

/// A model instantiated at a concrete batch size: the graph plus its memory
/// footprint.
#[derive(Debug, Clone)]
pub struct LoadedModel {
    name: String,
    kind: Option<ModelKind>,
    batch: u64,
    graph: Arc<Graph>,
    weights_bytes: u64,
    activation_bytes: u64,
}

impl LoadedModel {
    /// The model's name — the key profiles are stored under. Zoo models use
    /// their [`ModelKind::name`]; miniatures (see [`mini`]) use `mini-*`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which zoo model this is, if it is one ([`None`] for miniatures).
    pub fn kind(&self) -> Option<ModelKind> {
        self.kind
    }

    /// The batch size the graph was instantiated at.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The dataflow graph (shared; jobs never mutate it).
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Bytes of model weights. Loaded once per model and *shared* by every
    /// client of that model, as in TF-Serving.
    pub fn weights_bytes(&self) -> u64 {
        self.weights_bytes
    }

    /// Bytes of per-job activation memory (scales with batch size; allocated
    /// per concurrent client).
    pub fn activation_bytes(&self) -> u64 {
        self.activation_bytes
    }

    /// Assembles a model from explicit parts. Used by the [`mini`] builders;
    /// experiments should go through [`load`].
    pub fn from_parts(
        name: impl Into<String>,
        kind: Option<ModelKind>,
        batch: u64,
        graph: Arc<Graph>,
        weights_bytes: u64,
        activation_bytes: u64,
    ) -> LoadedModel {
        LoadedModel {
            name: name.into(),
            kind,
            batch,
            graph,
            weights_bytes,
            activation_bytes,
        }
    }
}

/// Instantiates a model at a batch size. Deterministic: the same
/// `(kind, batch)` always yields the identical graph.
///
/// # Errors
///
/// * [`ModelError::ZeroBatch`] if `batch == 0`.
/// * [`ModelError::BatchTooLarge`] if `batch > MAX_BATCH`.
pub fn load(kind: ModelKind, batch: u64) -> Result<LoadedModel, ModelError> {
    if batch == 0 {
        return Err(ModelError::ZeroBatch);
    }
    if batch > MAX_BATCH {
        return Err(ModelError::BatchTooLarge {
            requested: batch,
            max: MAX_BATCH,
        });
    }
    let cal = spec(kind);
    let graph = gen::generate(kind, cal, batch);
    Ok(LoadedModel {
        name: kind.name().to_string(),
        kind: Some(kind),
        batch,
        graph: Arc::new(graph),
        weights_bytes: cal.weights_mb * 1024 * 1024,
        activation_bytes: cal.activation_kb_per_sample * 1024 * batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_batch_rejected() {
        assert_eq!(load(ModelKind::Vgg, 0).unwrap_err(), ModelError::ZeroBatch);
    }

    #[test]
    fn oversize_batch_rejected() {
        match load(ModelKind::Vgg, MAX_BATCH + 1).unwrap_err() {
            ModelError::BatchTooLarge { requested, max } => {
                assert_eq!(requested, MAX_BATCH + 1);
                assert_eq!(max, MAX_BATCH);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn loading_is_deterministic() {
        let a = load(ModelKind::ResNet50, 32).unwrap();
        let b = load(ModelKind::ResNet50, 32).unwrap();
        assert_eq!(a.graph().as_ref(), b.graph().as_ref());
    }

    #[test]
    fn structure_is_batch_independent() {
        let a = load(ModelKind::ResNet50, 16).unwrap();
        let b = load(ModelKind::ResNet50, 128).unwrap();
        assert_eq!(a.graph().node_count(), b.graph().node_count());
        assert_eq!(a.graph().gpu_node_count(), b.graph().gpu_node_count());
    }

    #[test]
    fn durations_scale_with_batch() {
        let small = load(ModelKind::InceptionV4, 10).unwrap();
        let big = load(ModelKind::InceptionV4, 100).unwrap();
        let r = big.graph().total_gpu_time().as_nanos() as f64
            / small.graph().total_gpu_time().as_nanos() as f64;
        assert!(r > 2.0 && r < 10.0, "scale ratio {r}");
    }

    #[test]
    fn activation_memory_scales_with_batch() {
        let a = load(ModelKind::ResNet152, 10).unwrap();
        let b = load(ModelKind::ResNet152, 100).unwrap();
        assert_eq!(b.activation_bytes(), a.activation_bytes() * 10);
        assert_eq!(a.weights_bytes(), b.weights_bytes());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ModelKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
