//! Calibration targets taken from the paper.
//!
//! Table 2 of the paper fixes node counts, GPU-node counts and single-job
//! runtimes at one reference batch size per model. The remaining fields
//! (branching factor, memory footprints, CPU decode work) are set to
//! plausible published values for the architectures and tuned so the
//! scalability experiment (§4.3) lands where the paper reports.

use crate::ModelKind;

/// Per-model calibration constants.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Batch size Table 2 characterizes the model at.
    pub reference_batch: u64,
    /// Total node count (Table 2, "Nodes").
    pub total_nodes: u32,
    /// GPU-placed node count (Table 2, "GPU Nodes").
    pub gpu_nodes: u32,
    /// Single-job runtime in seconds at the reference batch (Table 2).
    pub runtime_s: f64,
    /// Fraction of the runtime that is serial GPU busy time; the rest is
    /// CPU-side decode/assembly and launch gaps.
    pub gpu_busy_fraction: f64,
    /// Number of parallel branches per block (Inception-style modules have
    /// 4, residual blocks 2, plain convolutional stacks 1).
    pub branching: u32,
    /// Model weights in MiB (shared across clients, as in TF-Serving).
    pub weights_mb: u64,
    /// Per-sample activation memory in KiB (per-client, scales with batch).
    pub activation_kb_per_sample: u64,
    /// CPU decode time per input image, in microseconds.
    pub decode_us_per_image: f64,
    /// Fixed (batch-independent) fraction of each node's duration — the
    /// kernel-launch floor in the affine batch-scaling model.
    pub batch_alpha: f64,
}

/// The calibration for one model.
pub fn spec(kind: ModelKind) -> &'static Calibration {
    match kind {
        ModelKind::InceptionV4 => &INCEPTION_V4,
        ModelKind::GoogLeNet => &GOOGLENET,
        ModelKind::AlexNet => &ALEXNET,
        ModelKind::Vgg => &VGG,
        ModelKind::ResNet50 => &RESNET_50,
        ModelKind::ResNet101 => &RESNET_101,
        ModelKind::ResNet152 => &RESNET_152,
    }
}

static INCEPTION_V4: Calibration = Calibration {
    reference_batch: 150,
    total_nodes: 15_599,
    gpu_nodes: 13_309,
    runtime_s: 0.81,
    gpu_busy_fraction: 0.89,
    branching: 4,
    weights_mb: 163,
    activation_kb_per_sample: 1100,
    decode_us_per_image: 14.0,
    batch_alpha: 0.15,
};

static GOOGLENET: Calibration = Calibration {
    reference_batch: 200,
    total_nodes: 18_980,
    gpu_nodes: 15_948,
    runtime_s: 1.09,
    gpu_busy_fraction: 0.9,
    branching: 4,
    weights_mb: 27,
    activation_kb_per_sample: 1200,
    decode_us_per_image: 12.0,
    batch_alpha: 0.15,
};

static ALEXNET: Calibration = Calibration {
    reference_batch: 256,
    total_nodes: 23_774,
    gpu_nodes: 19_902,
    runtime_s: 1.13,
    gpu_busy_fraction: 0.88,
    branching: 2,
    weights_mb: 233,
    activation_kb_per_sample: 800,
    decode_us_per_image: 10.0,
    batch_alpha: 0.18,
};

static VGG: Calibration = Calibration {
    reference_batch: 120,
    total_nodes: 11_297,
    gpu_nodes: 9_965,
    runtime_s: 0.83,
    gpu_busy_fraction: 0.91,
    branching: 1,
    weights_mb: 528,
    activation_kb_per_sample: 2000,
    decode_us_per_image: 14.0,
    batch_alpha: 0.12,
};

static RESNET_50: Calibration = Calibration {
    reference_batch: 144,
    total_nodes: 14_472,
    gpu_nodes: 12_280,
    runtime_s: 0.79,
    gpu_busy_fraction: 0.89,
    branching: 2,
    weights_mb: 98,
    activation_kb_per_sample: 1600,
    decode_us_per_image: 13.0,
    batch_alpha: 0.15,
};

static RESNET_101: Calibration = Calibration {
    reference_batch: 128,
    total_nodes: 14_034,
    gpu_nodes: 12_082,
    runtime_s: 0.85,
    gpu_busy_fraction: 0.9,
    branching: 2,
    weights_mb: 170,
    activation_kb_per_sample: 1900,
    decode_us_per_image: 13.0,
    batch_alpha: 0.15,
};

static RESNET_152: Calibration = Calibration {
    reference_batch: 100,
    total_nodes: 12_495,
    gpu_nodes: 10_963,
    runtime_s: 0.80,
    gpu_busy_fraction: 0.9,
    branching: 2,
    weights_mb: 230,
    activation_kb_per_sample: 2450,
    decode_us_per_image: 13.0,
    batch_alpha: 0.15,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        let cases = [
            (ModelKind::InceptionV4, 150, 15_599, 13_309, 0.81),
            (ModelKind::GoogLeNet, 200, 18_980, 15_948, 1.09),
            (ModelKind::AlexNet, 256, 23_774, 19_902, 1.13),
            (ModelKind::Vgg, 120, 11_297, 9_965, 0.83),
            (ModelKind::ResNet50, 144, 14_472, 12_280, 0.79),
            (ModelKind::ResNet101, 128, 14_034, 12_082, 0.85),
            (ModelKind::ResNet152, 100, 12_495, 10_963, 0.80),
        ];
        for (kind, batch, total, gpu, runtime) in cases {
            let c = spec(kind);
            assert_eq!(c.reference_batch, batch, "{kind} batch");
            assert_eq!(c.total_nodes, total, "{kind} nodes");
            assert_eq!(c.gpu_nodes, gpu, "{kind} gpu nodes");
            assert!((c.runtime_s - runtime).abs() < 1e-9, "{kind} runtime");
        }
    }

    #[test]
    fn gpu_nodes_do_not_exceed_total() {
        for kind in ModelKind::ALL {
            let c = spec(kind);
            assert!(c.gpu_nodes < c.total_nodes, "{kind}");
            assert!(c.branching >= 1, "{kind}");
            assert!(c.gpu_busy_fraction > 0.0 && c.gpu_busy_fraction < 1.0, "{kind}");
            assert!(c.batch_alpha > 0.0 && c.batch_alpha < 1.0, "{kind}");
        }
    }
}
