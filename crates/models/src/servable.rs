//! On-disk model format — the reproduction's "SavedModel".
//!
//! TF-Serving loads *servables* from disk; this module gives [`LoadedModel`]
//! the same lifecycle: serialize a generated (or hand-built) model to JSON,
//! load it back bit-identically. Useful for pinning a model across tool
//! invocations (e.g. `olympctl profile` writes profiles that must match the
//! exact graph a later `olympctl run` uses) and for shipping miniature
//! repro cases.

use crate::{LoadedModel, ModelKind};
use dataflow::Graph;
use microjson::Value;
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// Current servable format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from servable I/O.
#[derive(Debug)]
pub enum ServableError {
    /// I/O failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Format(microjson::Error),
    /// The file is from an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
}

impl fmt::Display for ServableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServableError::Io(e) => write!(f, "servable I/O error: {e}"),
            ServableError::Format(e) => write!(f, "malformed servable: {e}"),
            ServableError::Version { found, supported } => {
                write!(f, "servable format v{found} unsupported (this build reads v{supported})")
            }
        }
    }
}

impl std::error::Error for ServableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServableError::Io(e) => Some(e),
            ServableError::Format(e) => Some(e),
            ServableError::Version { .. } => None,
        }
    }
}

impl From<std::io::Error> for ServableError {
    fn from(e: std::io::Error) -> Self {
        ServableError::Io(e)
    }
}

impl From<microjson::Error> for ServableError {
    fn from(e: microjson::Error) -> Self {
        ServableError::Format(e)
    }
}

fn kind_name(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::InceptionV4 => "InceptionV4",
        ModelKind::GoogLeNet => "GoogLeNet",
        ModelKind::AlexNet => "AlexNet",
        ModelKind::Vgg => "Vgg",
        ModelKind::ResNet50 => "ResNet50",
        ModelKind::ResNet101 => "ResNet101",
        ModelKind::ResNet152 => "ResNet152",
    }
}

fn kind_from_name(name: &str) -> Option<ModelKind> {
    ModelKind::ALL.into_iter().find(|k| kind_name(*k) == name)
}

fn u64_field(v: &Value, key: &str) -> Result<u64, microjson::Error> {
    v.field(key)?.as_u64().ok_or_else(|| {
        microjson::Error::decode(format!("field {key:?} is not a non-negative integer"))
    })
}

/// Writes a model as a servable to `writer`.
///
/// # Errors
///
/// Returns [`ServableError`] on I/O or serialization failure.
pub fn save<W: Write>(model: &LoadedModel, mut writer: W) -> Result<(), ServableError> {
    let doc = Value::Object(vec![
        ("format_version".into(), Value::UInt(u64::from(FORMAT_VERSION))),
        ("name".into(), Value::str(model.name())),
        (
            "kind".into(),
            match model.kind() {
                Some(kind) => Value::str(kind_name(kind)),
                None => Value::Null,
            },
        ),
        ("batch".into(), Value::UInt(model.batch())),
        ("weights_bytes".into(), Value::UInt(model.weights_bytes())),
        ("activation_bytes".into(), Value::UInt(model.activation_bytes())),
        ("graph".into(), model.graph().to_json()),
    ]);
    writer.write_all(doc.to_string().as_bytes())?;
    Ok(())
}

/// Reads a servable previously written by [`save`].
///
/// # Errors
///
/// Returns [`ServableError`] on I/O failure, malformed input or an
/// unsupported format version.
pub fn load<R: Read>(reader: R) -> Result<LoadedModel, ServableError> {
    let doc = Value::from_reader(reader)?;
    let format_version = u64_field(&doc, "format_version")?;
    if format_version != u64::from(FORMAT_VERSION) {
        return Err(ServableError::Version {
            found: u32::try_from(format_version).unwrap_or(u32::MAX),
            supported: FORMAT_VERSION,
        });
    }
    let name = doc
        .field("name")?
        .as_str()
        .ok_or_else(|| microjson::Error::decode("field \"name\" is not a string"))?
        .to_string();
    let kind = match doc.field("kind")? {
        Value::Null => None,
        v => {
            let text = v
                .as_str()
                .ok_or_else(|| microjson::Error::decode("field \"kind\" is not a string"))?;
            Some(kind_from_name(text).ok_or_else(|| {
                microjson::Error::decode(format!("unknown model kind {text:?}"))
            })?)
        }
    };
    let graph = Graph::from_json(doc.field("graph")?)?;
    Ok(LoadedModel::from_parts(
        name,
        kind,
        u64_field(&doc, "batch")?,
        Arc::new(graph),
        u64_field(&doc, "weights_bytes")?,
        u64_field(&doc, "activation_bytes")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let model = crate::mini::branchy(4);
        let mut buf = Vec::new();
        save(&model, &mut buf).expect("save");
        let back = load(buf.as_slice()).expect("load");
        assert_eq!(back.name(), model.name());
        assert_eq!(back.kind(), model.kind());
        assert_eq!(back.batch(), model.batch());
        assert_eq!(back.weights_bytes(), model.weights_bytes());
        assert_eq!(back.activation_bytes(), model.activation_bytes());
        assert_eq!(back.graph().as_ref(), model.graph().as_ref());
    }

    #[test]
    fn zoo_model_roundtrips() {
        let model = crate::load(ModelKind::ResNet50, 16).expect("zoo model");
        let mut buf = Vec::new();
        save(&model, &mut buf).expect("save");
        let back = load(buf.as_slice()).expect("load");
        assert_eq!(back.kind(), Some(ModelKind::ResNet50));
        assert_eq!(back.graph().as_ref(), model.graph().as_ref());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let model = crate::mini::tiny(1);
        let mut buf = Vec::new();
        save(&model, &mut buf).expect("save");
        let text = String::from_utf8(buf).expect("json is utf8");
        let bumped = text.replace("\"format_version\":1", "\"format_version\":99");
        match load(bumped.as_bytes()) {
            Err(ServableError::Version { found: 99, supported }) => {
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(
            load(&b"definitely not json"[..]),
            Err(ServableError::Format(_))
        ));
    }
}
