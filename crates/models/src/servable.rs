//! On-disk model format — the reproduction's "SavedModel".
//!
//! TF-Serving loads *servables* from disk; this module gives [`LoadedModel`]
//! the same lifecycle: serialize a generated (or hand-built) model to JSON,
//! load it back bit-identically. Useful for pinning a model across tool
//! invocations (e.g. `olympctl profile` writes profiles that must match the
//! exact graph a later `olympctl run` uses) and for shipping miniature
//! repro cases.

use crate::{LoadedModel, ModelKind};
use dataflow::Graph;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

/// Serialized form of a [`LoadedModel`].
#[derive(Debug, Serialize, Deserialize)]
struct ServableFile {
    format_version: u32,
    name: String,
    kind: Option<ModelKind>,
    batch: u64,
    weights_bytes: u64,
    activation_bytes: u64,
    graph: Graph,
}

/// Current servable format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from servable I/O.
#[derive(Debug)]
pub enum ServableError {
    /// I/O failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Format(serde_json::Error),
    /// The file is from an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
}

impl fmt::Display for ServableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServableError::Io(e) => write!(f, "servable I/O error: {e}"),
            ServableError::Format(e) => write!(f, "malformed servable: {e}"),
            ServableError::Version { found, supported } => {
                write!(f, "servable format v{found} unsupported (this build reads v{supported})")
            }
        }
    }
}

impl std::error::Error for ServableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServableError::Io(e) => Some(e),
            ServableError::Format(e) => Some(e),
            ServableError::Version { .. } => None,
        }
    }
}

impl From<std::io::Error> for ServableError {
    fn from(e: std::io::Error) -> Self {
        ServableError::Io(e)
    }
}

impl From<serde_json::Error> for ServableError {
    fn from(e: serde_json::Error) -> Self {
        ServableError::Format(e)
    }
}

/// Writes a model as a servable to `writer`.
///
/// # Errors
///
/// Returns [`ServableError`] on I/O or serialization failure.
pub fn save<W: Write>(model: &LoadedModel, writer: W) -> Result<(), ServableError> {
    let file = ServableFile {
        format_version: FORMAT_VERSION,
        name: model.name().to_string(),
        kind: model.kind(),
        batch: model.batch(),
        weights_bytes: model.weights_bytes(),
        activation_bytes: model.activation_bytes(),
        graph: model.graph().as_ref().clone(),
    };
    serde_json::to_writer(writer, &file)?;
    Ok(())
}

/// Reads a servable previously written by [`save`].
///
/// # Errors
///
/// Returns [`ServableError`] on I/O failure, malformed input or an
/// unsupported format version.
pub fn load<R: Read>(reader: R) -> Result<LoadedModel, ServableError> {
    let file: ServableFile = serde_json::from_reader(reader)?;
    if file.format_version != FORMAT_VERSION {
        return Err(ServableError::Version {
            found: file.format_version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(LoadedModel::from_parts(
        file.name,
        file.kind,
        file.batch,
        Arc::new(file.graph),
        file.weights_bytes,
        file.activation_bytes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let model = crate::mini::branchy(4);
        let mut buf = Vec::new();
        save(&model, &mut buf).expect("save");
        let back = load(buf.as_slice()).expect("load");
        assert_eq!(back.name(), model.name());
        assert_eq!(back.kind(), model.kind());
        assert_eq!(back.batch(), model.batch());
        assert_eq!(back.weights_bytes(), model.weights_bytes());
        assert_eq!(back.activation_bytes(), model.activation_bytes());
        assert_eq!(back.graph().as_ref(), model.graph().as_ref());
    }

    #[test]
    fn zoo_model_roundtrips() {
        let model = crate::load(ModelKind::ResNet50, 16).expect("zoo model");
        let mut buf = Vec::new();
        save(&model, &mut buf).expect("save");
        let back = load(buf.as_slice()).expect("load");
        assert_eq!(back.kind(), Some(ModelKind::ResNet50));
        assert_eq!(back.graph().as_ref(), model.graph().as_ref());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let model = crate::mini::tiny(1);
        let mut buf = Vec::new();
        save(&model, &mut buf).expect("save");
        let text = String::from_utf8(buf).expect("json is utf8");
        let bumped = text.replace("\"format_version\":1", "\"format_version\":99");
        match load(bumped.as_bytes()) {
            Err(ServableError::Version { found: 99, supported }) => {
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(
            load(&b"definitely not json"[..]),
            Err(ServableError::Format(_))
        ));
    }
}
