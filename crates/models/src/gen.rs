//! Deterministic synthetic graph generation.
//!
//! The generator builds, per model, an input stage (CPU decode + batch
//! assembly, as TF's batching nodes do), a GPU stem, a sequence of branching
//! blocks matching the architecture family (4-way inception modules, 2-way
//! residual blocks, or plain stacks), a classification tail, and CPU
//! bookkeeping leaves hanging off block joins until the Table 2 CPU-node
//! count is met. Node durations follow a tiny/medium/large lognormal mixture
//! normalized so their sum equals the calibrated GPU busy time, reproducing
//! the Figure 4 CDF shape.

use crate::calibration::Calibration;
use crate::ModelKind;
use dataflow::{Graph, GraphBuilder, NodeId, NodeTemplate, OpKind};
use simtime::{DetRng, SimDuration};

/// Stable seed per (model, batch) so graphs are identical across processes.
fn seed_for(kind: ModelKind, batch: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in kind.name().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Affine batch scaling: a fixed launch floor plus a batch-proportional part,
/// equal to 1.0 at the reference batch.
fn batch_factor(cal: &Calibration, batch: u64) -> f64 {
    cal.batch_alpha + (1.0 - cal.batch_alpha) * batch as f64 / cal.reference_batch as f64
}

/// GPU op mix for a model family, cycled along branches.
fn op_mix(kind: ModelKind) -> &'static [OpKind] {
    match kind {
        ModelKind::InceptionV4 | ModelKind::GoogLeNet => &[
            OpKind::Conv2d,
            OpKind::BatchNorm,
            OpKind::Activation,
            OpKind::Conv2d,
            OpKind::Pool,
        ],
        ModelKind::AlexNet => &[
            OpKind::Conv2d,
            OpKind::Activation,
            OpKind::Lrn,
            OpKind::Pool,
        ],
        ModelKind::Vgg => &[OpKind::Conv2d, OpKind::Activation, OpKind::Conv2d, OpKind::Pool],
        ModelKind::ResNet50 | ModelKind::ResNet101 | ModelKind::ResNet152 => &[
            OpKind::Conv2d,
            OpKind::BatchNorm,
            OpKind::Activation,
        ],
    }
}

/// Draws one node duration from the tiny/medium/large mixture (in ns,
/// un-normalized). Mixture weights reproduce Figure 4: ~80% of nodes under
/// 20 µs, >90% under 1 ms, with a heavy tail of big convolutions.
fn draw_raw_duration(rng: &mut DetRng) -> f64 {
    let u = rng.next_f64();
    if u < 0.80 {
        // tiny: median ~6 µs (elementwise ops, small convolutions)
        rng.lognormal((6_000.0_f64).ln(), 0.65)
    } else if u < 0.975 {
        // medium: median ~110 µs (typical convolution kernels)
        rng.lognormal((110_000.0_f64).ln(), 0.40)
    } else {
        // large: median ~350 µs (the big stem/reduction convolutions)
        rng.lognormal((350_000.0_f64).ln(), 0.30)
    }
}

/// Number of parallel decode nodes in the input stage.
const DECODE_WIDTH: u32 = 4;

/// Generates the graph for `kind` at `batch`.
///
/// Postconditions (asserted): node counts match the calibration exactly and
/// total GPU time matches the calibrated busy time at this batch to within
/// rounding.
pub fn generate(kind: ModelKind, cal: &Calibration, batch: u64) -> Graph {
    let mut rng = DetRng::new(seed_for(kind, batch));
    let mut b = GraphBuilder::new();

    let gpu_target = cal.gpu_nodes as usize;
    let cpu_target = (cal.total_nodes - cal.gpu_nodes) as usize;

    // --- Input stage (CPU): parallel decodes feeding batch assembly. ---
    let decode_total_us = cal.decode_us_per_image * batch as f64;
    let per_decode = SimDuration::from_micros_f64(decode_total_us / DECODE_WIDTH as f64);
    let decodes: Vec<NodeId> = (0..DECODE_WIDTH)
        .map(|i| {
            b.add_node(NodeTemplate::cpu(
                format!("decode_{i}"),
                OpKind::InputDecode,
                per_decode,
            ))
        })
        .collect();
    let assemble = b.add_node(NodeTemplate::cpu(
        "batch_assemble",
        OpKind::BatchAssemble,
        SimDuration::from_micros_f64(0.4 * batch as f64),
    ));
    for d in &decodes {
        b.add_edge(*d, assemble).expect("fresh edge");
    }
    let mut cpu_used = DECODE_WIDTH as usize + 1;

    // --- GPU body: stem, blocks, tail. Durations are placeholders (1 ns)
    // until the normalization pass assigns the real mixture draws. ---
    let mut gpu_ids: Vec<NodeId> = Vec::with_capacity(gpu_target);
    let mut gpu_ops: Vec<OpKind> = Vec::with_capacity(gpu_target);
    fn add_gpu(
        b: &mut GraphBuilder,
        gpu_ids: &mut Vec<NodeId>,
        gpu_ops: &mut Vec<OpKind>,
        name: String,
        op: OpKind,
    ) -> NodeId {
        let id = b.add_node(NodeTemplate::gpu(name, op, SimDuration::from_nanos(1), 1));
        gpu_ids.push(id);
        gpu_ops.push(op);
        id
    }

    // Reserve 3 GPU nodes for the tail (pool, fc, softmax).
    let tail_nodes = 3usize;
    let stem = add_gpu(&mut b, &mut gpu_ids, &mut gpu_ops, "stem_conv".into(), OpKind::Conv2d);
    b.add_edge(assemble, stem).expect("fresh edge");

    let mix = op_mix(kind);
    let mut frontier = stem; // join of the previous block
    let mut join_nodes: Vec<NodeId> = vec![stem];
    let mut block_idx = 0u32;
    // Each block consumes branching*len (+1 join if branching > 1) GPU nodes.
    while gpu_ids.len() + tail_nodes < gpu_target {
        let remaining = gpu_target - tail_nodes - gpu_ids.len();
        // A branched block needs at least one node per branch plus a join;
        // fall back to a plain chain when the budget is smaller than that.
        let branches = if remaining > cal.branching as usize {
            cal.branching
        } else {
            1
        };
        let join_cost = if branches > 1 { 1 } else { 0 };
        // Branch length: 2..=6 drawn, but trimmed to exactly fill the target
        // when we are close to it.
        let max_len = ((remaining - join_cost) / branches as usize).max(1);
        let len = (rng.range_u64(2, 7) as usize).min(max_len);
        let mut branch_ends = Vec::with_capacity(branches as usize);
        for br in 0..branches {
            let mut prev = frontier;
            for i in 0..len {
                let op = mix[(br as usize + i) % mix.len()];
                let id = add_gpu(&mut b, &mut gpu_ids, &mut gpu_ops, format!("b{block_idx}_br{br}_{i}_{op}"), op);
                b.add_edge(prev, id).expect("fresh edge");
                prev = id;
            }
            branch_ends.push(prev);
        }
        frontier = if branches > 1 {
            let join_op = match kind {
                ModelKind::ResNet50 | ModelKind::ResNet101 | ModelKind::ResNet152 => OpKind::Add,
                _ => OpKind::Concat,
            };
            let join = add_gpu(&mut b, &mut gpu_ids, &mut gpu_ops, format!("b{block_idx}_join"), join_op);
            for e in &branch_ends {
                b.add_edge(*e, join).expect("fresh edge");
            }
            join
        } else {
            branch_ends[0]
        };
        join_nodes.push(frontier);
        block_idx += 1;
    }

    // Pad with a chain of activations if the block loop undershot.
    while gpu_ids.len() + tail_nodes < gpu_target {
        let pad_name = format!("pad_{}", gpu_ids.len());
        let id = add_gpu(&mut b, &mut gpu_ids, &mut gpu_ops, pad_name, OpKind::Activation);
        b.add_edge(frontier, id).expect("fresh edge");
        frontier = id;
    }

    // --- Tail: global pool, classifier, softmax. ---
    let pool = add_gpu(&mut b, &mut gpu_ids, &mut gpu_ops, "global_pool".into(), OpKind::Pool);
    b.add_edge(frontier, pool).expect("fresh edge");
    let fc = add_gpu(&mut b, &mut gpu_ids, &mut gpu_ops, "fc".into(), OpKind::MatMul);
    b.add_edge(pool, fc).expect("fresh edge");
    let softmax = add_gpu(&mut b, &mut gpu_ids, &mut gpu_ops, "softmax".into(), OpKind::Softmax);
    b.add_edge(fc, softmax).expect("fresh edge");

    assert_eq!(gpu_ids.len(), gpu_target, "GPU node count calibration");

    // --- CPU bookkeeping leaves hanging off joins (shape/summary ops). ---
    let mut j = 0usize;
    while cpu_used < cpu_target {
        let parent = join_nodes[j % join_nodes.len()];
        let id = b.add_node(NodeTemplate::cpu(
            format!("bk_{cpu_used}"),
            OpKind::Bookkeeping,
            SimDuration::from_nanos(rng.range_u64(400, 2_500)),
        ));
        b.add_edge(parent, id).expect("fresh edge");
        cpu_used += 1;
        j += 1;
    }

    let mut graph = b.build().expect("generator always builds a DAG");

    // --- Normalization pass: assign mixture durations scaled so the total
    // GPU busy time equals the calibration at this batch, then derive costs
    // from per-op densities with a ±15% per-node wiggle. ---
    let raws: Vec<f64> = gpu_ids.iter().map(|_| draw_raw_duration(&mut rng)).collect();
    let raw_sum: f64 = raws.iter().sum();
    let busy_ref_ns = cal.runtime_s * cal.gpu_busy_fraction * 1e9;
    let busy_ns = busy_ref_ns * batch_factor(cal, batch);
    let scale = busy_ns / raw_sum;
    set_gpu_durations(&mut graph, &gpu_ids, &gpu_ops, &raws, scale, &mut rng);

    debug_assert_eq!(graph.node_count(), cal.total_nodes as usize);
    debug_assert_eq!(graph.gpu_node_count(), cal.gpu_nodes as usize);
    graph
}

/// Writes normalized durations and densities-derived costs into the built
/// graph through `Graph::set_node_timing` (the generator-facing timing API).
fn set_gpu_durations(
    graph: &mut Graph,
    gpu_ids: &[NodeId],
    gpu_ops: &[OpKind],
    raws: &[f64],
    scale: f64,
    rng: &mut DetRng,
) {
    for ((id, op), raw) in gpu_ids.iter().zip(gpu_ops).zip(raws) {
        let dur_ns = (raw * scale).max(200.0);
        let wiggle = rng.range_f64(0.95, 1.05);
        let cost = (dur_ns * op.cost_density() * wiggle).round().max(1.0) as u64;
        graph.set_node_timing(*id, SimDuration::from_nanos(dur_ns.round() as u64), cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use metrics::Cdf;

    #[test]
    fn node_counts_match_table2_exactly() {
        for kind in ModelKind::ALL {
            let cal = spec(kind);
            let g = generate(kind, cal, cal.reference_batch);
            assert_eq!(g.node_count(), cal.total_nodes as usize, "{kind}");
            assert_eq!(g.gpu_node_count(), cal.gpu_nodes as usize, "{kind}");
        }
    }

    #[test]
    fn gpu_busy_time_matches_calibration() {
        for kind in [ModelKind::InceptionV4, ModelKind::ResNet152] {
            let cal = spec(kind);
            let g = generate(kind, cal, cal.reference_batch);
            let busy = g.total_gpu_time().as_secs_f64();
            let target = cal.runtime_s * cal.gpu_busy_fraction;
            let err = (busy - target).abs() / target;
            assert!(err < 0.02, "{kind}: busy {busy} vs target {target}");
        }
    }

    #[test]
    fn duration_cdf_matches_figure4_shape() {
        let cal = spec(ModelKind::InceptionV4);
        let g = generate(ModelKind::InceptionV4, cal, 100);
        let durations: Vec<f64> = g
            .iter()
            .filter(|(_, n)| n.is_gpu())
            .map(|(_, n)| n.duration().as_micros_f64())
            .collect();
        let cdf = Cdf::of(durations);
        assert!(cdf.fraction_below(20.0) > 0.70, "most nodes are tiny");
        assert!(cdf.fraction_below(1_000.0) > 0.90, ">90% under 1 ms");
    }

    #[test]
    fn cost_rate_lands_near_paper_ratio() {
        let cal = spec(ModelKind::InceptionV4);
        let g = generate(ModelKind::InceptionV4, cal, 100);
        let rate = g.total_true_cost() as f64 / g.total_gpu_time().as_nanos() as f64;
        assert!(rate > 10.0 && rate < 20.0, "C/D rate {rate}");
    }

    #[test]
    fn graphs_are_acyclic_with_single_entry_stage() {
        let cal = spec(ModelKind::GoogLeNet);
        let g = generate(ModelKind::GoogLeNet, cal, 50);
        let roots = g.roots();
        assert_eq!(roots.len(), DECODE_WIDTH as usize, "decode nodes are the only roots");
        assert_eq!(g.topo_order().len(), g.node_count());
    }

    #[test]
    fn batch_factor_is_affine_and_anchored() {
        let cal = spec(ModelKind::InceptionV4);
        assert!((batch_factor(cal, cal.reference_batch) - 1.0).abs() < 1e-12);
        assert!(batch_factor(cal, 1) > cal.batch_alpha);
        assert!(batch_factor(cal, 2 * cal.reference_batch) < 2.0);
    }
}
