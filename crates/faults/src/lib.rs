#![deny(missing_docs)]

//! Deterministic fault injection and recovery primitives.
//!
//! Olympian's fairness claims are only demonstrated on a healthy device;
//! this crate supplies the machinery to *test* (and survive) an unhealthy
//! one. A [`FaultPlan`] describes seeded, virtual-time disturbances —
//! transient kernel failures, a kernel slowdown window, device stall
//! windows and transient memory-reservation failures — that the serving
//! engine injects at the `gpusim::GpuDevice` boundary. All randomness
//! flows through the repo's own [`DetRng`], so a faulted run is
//! byte-identical across `--jobs N`.
//!
//! Recovery primitives live here too, as pure state machines the engine
//! drives: a [`RetryPolicy`] producing a deterministic exponential backoff
//! schedule that never passes a job's run deadline, and a per-client
//! [`CircuitBreaker`] (closed → open → half-open probe) that decides when
//! a persistently failing client should be shed instead of wedging the
//! run.
//!
//! ```
//! use faults::{FaultConfig, FaultPlan};
//! use simtime::SimTime;
//!
//! let plan = FaultPlan::new().with_kernel_failures(0.05);
//! let cfg = FaultConfig::new(plan);
//! let mut inj = cfg.injector(42);
//! // Same seed, same draw order => same verdicts, run after run.
//! let verdicts: Vec<bool> =
//!     (0..8).map(|_| inj.kernel_fails(SimTime::ZERO)).collect();
//! let mut again = cfg.injector(42);
//! assert_eq!(verdicts, (0..8).map(|_| again.kernel_fails(SimTime::ZERO)).collect::<Vec<_>>());
//! ```

use simtime::{DetRng, SimDuration, SimTime};

/// Salt folded into the engine seed so the fault stream is decorrelated
/// from every other consumer of the run seed.
pub const FAULT_SEED_SALT: u64 = 0xFA17_BEEF;

/// A half-open virtual-time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl Window {
    /// Creates a window; `until` must be after `from`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(until > from, "fault window must have positive length");
        Window { from, until }
    }

    /// Whether `t` lies inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.from && t < self.until
    }
}

/// A window during which every kernel runs `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// The affected window.
    pub window: Window,
    /// Duration multiplier (> 1).
    pub factor: f64,
}

/// What can go wrong, and when. An empty plan injects nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that any given kernel launch transiently fails.
    pub kernel_failure_p: f64,
    /// Probability that any given memory reservation transiently fails
    /// (even though capacity is available).
    pub alloc_failure_p: f64,
    /// Windows during which kernels run slower by a factor.
    pub slowdowns: Vec<Slowdown>,
    /// Windows during which the device starts no new kernels.
    pub stalls: Vec<Window>,
}

impl FaultPlan {
    /// An empty plan: nothing is ever injected.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the transient kernel-failure probability (in `[0, 1)`).
    pub fn with_kernel_failures(mut self, p: f64) -> Self {
        self.kernel_failure_p = p;
        self
    }

    /// Sets the transient memory-reservation failure probability.
    pub fn with_alloc_failures(mut self, p: f64) -> Self {
        self.alloc_failure_p = p;
        self
    }

    /// Adds a kernel slowdown window.
    pub fn with_slowdown(mut self, factor: f64, from: SimTime, until: SimTime) -> Self {
        self.slowdowns.push(Slowdown { window: Window::new(from, until), factor });
        self
    }

    /// Adds a device stall window.
    pub fn with_stall(mut self, from: SimTime, until: SimTime) -> Self {
        self.stalls.push(Window::new(from, until));
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.kernel_failure_p == 0.0
            && self.alloc_failure_p == 0.0
            && self.slowdowns.is_empty()
            && self.stalls.is_empty()
    }

    /// Checks plan invariants.
    ///
    /// # Panics
    ///
    /// Panics on probabilities outside `[0, 1)`, slowdown factors ≤ 1, or
    /// overlapping stall windows.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.kernel_failure_p),
            "kernel failure probability must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&self.alloc_failure_p),
            "alloc failure probability must be in [0, 1)"
        );
        for s in &self.slowdowns {
            assert!(s.factor > 1.0, "slowdown factor must exceed 1");
        }
        let mut stalls = self.stalls.clone();
        stalls.sort_by_key(|w| w.from);
        for pair in stalls.windows(2) {
            assert!(pair[0].until <= pair[1].from, "stall windows must not overlap");
        }
    }
}

/// Deterministic exponential backoff for kernel/admission retries.
///
/// The delay before attempt `n` (0-based) is
/// `base · multiplier^n · (1 + jitter·u)` with `u` drawn from the retry
/// RNG — so for a fixed seed the schedule is reproducible, and because
/// `multiplier > 1 + jitter` it is strictly increasing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retry attempts before the client is shed.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Exponential growth factor per attempt.
    pub multiplier: f64,
    /// Relative jitter amplitude (deterministically drawn).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: SimDuration::from_micros(50),
            multiplier: 2.0,
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// Checks policy invariants.
    ///
    /// # Panics
    ///
    /// Panics unless `max_attempts > 0`, `base > 0`, `jitter ≥ 0` and
    /// `multiplier > 1 + jitter` (the condition for a strictly increasing
    /// schedule).
    pub fn validate(&self) {
        assert!(self.max_attempts > 0, "retry policy needs at least one attempt");
        assert!(self.base > SimDuration::ZERO, "retry base delay must be positive");
        assert!(self.jitter >= 0.0, "retry jitter must be non-negative");
        assert!(
            self.multiplier > 1.0 + self.jitter,
            "multiplier must exceed 1 + jitter so backoff strictly increases"
        );
    }

    /// Backoff delay before retry `attempt` (0-based), with deterministic
    /// jitter drawn from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut DetRng) -> SimDuration {
        let scale = self.multiplier.powi(attempt as i32);
        let jitter = 1.0 + self.jitter * rng.next_f64();
        self.base.mul_f64(scale * jitter)
    }

    /// Absolute time of retry `attempt` from `now`, or `None` when the
    /// attempt budget is exhausted or the retry would land at/after
    /// `deadline` — the caller should shed instead of retrying.
    pub fn next_retry_at(
        &self,
        now: SimTime,
        attempt: u32,
        deadline: Option<SimTime>,
        rng: &mut DetRng,
    ) -> Option<SimTime> {
        if attempt >= self.max_attempts {
            return None;
        }
        let at = now + self.backoff(attempt, rng);
        match deadline {
            Some(d) if at >= d => None,
            _ => Some(at),
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a half-open probe.
    pub cooldown: SimDuration,
    /// Trips after which the client is shed for good.
    pub max_trips: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            cooldown: SimDuration::from_millis(2),
            max_trips: 2,
        }
    }
}

impl BreakerConfig {
    /// Checks breaker invariants.
    ///
    /// # Panics
    ///
    /// Panics unless threshold, cooldown and max trips are all positive.
    pub fn validate(&self) {
        assert!(self.failure_threshold > 0, "breaker threshold must be positive");
        assert!(self.cooldown > SimDuration::ZERO, "breaker cooldown must be positive");
        assert!(self.max_trips > 0, "breaker needs at least one trip");
    }
}

/// Breaker state, in the classic three-state formulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally; consecutive failures are counted.
    Closed,
    /// Tripped: requests are deferred until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides open vs closed.
    HalfOpen,
}

impl BreakerState {
    /// Stable kebab-case label for traces and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What a recorded failure did to the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Still closed (or already open): nothing changed.
    None,
    /// The breaker tripped open until the given time.
    Opened {
        /// When the half-open probe may go out.
        until: SimTime,
    },
    /// The trip budget is spent: shed the client.
    Shed,
}

/// Per-client circuit breaker driven by the engine's kernel outcomes.
///
/// ```
/// use faults::{BreakerConfig, BreakerEvent, BreakerState, CircuitBreaker};
/// use simtime::{SimDuration, SimTime};
///
/// let cfg = BreakerConfig { failure_threshold: 2, ..BreakerConfig::default() };
/// let mut b = CircuitBreaker::new(cfg);
/// let t = SimTime::ZERO;
/// assert_eq!(b.record_failure(t), BreakerEvent::None);
/// let BreakerEvent::Opened { until } = b.record_failure(t) else { panic!() };
/// assert_eq!(b.state(), BreakerState::Open);
/// assert_eq!(b.earliest_attempt(t), until);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u32,
    open_until: SimTime,
}

impl CircuitBreaker {
    /// A closed breaker with zeroed counters.
    pub fn new(cfg: BreakerConfig) -> Self {
        cfg.validate();
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            open_until: SimTime::ZERO,
        }
    }

    /// Current state. A breaker reported as `Open` flips to `HalfOpen`
    /// the first time [`CircuitBreaker::earliest_attempt`] is consulted
    /// past the cooldown; state transitions are otherwise explicit.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u32 {
        self.trips
    }

    /// Records a successful kernel: closes a half-open breaker and resets
    /// the consecutive-failure count.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed kernel at `now`.
    pub fn record_failure(&mut self, now: SimTime) -> BreakerEvent {
        // A failure inside the cooldown (a kernel that was already in
        // flight when the breaker tripped) does not count as the probe.
        if now < self.open_until {
            return BreakerEvent::None;
        }
        self.consecutive_failures += 1;
        let probing = self.state == BreakerState::HalfOpen;
        if probing || self.consecutive_failures >= self.cfg.failure_threshold {
            self.trips += 1;
            if self.trips >= self.cfg.max_trips {
                return BreakerEvent::Shed;
            }
            self.state = BreakerState::Open;
            self.consecutive_failures = 0;
            self.open_until = now + self.cfg.cooldown;
            return BreakerEvent::Opened { until: self.open_until };
        }
        BreakerEvent::None
    }

    /// Earliest time a (re)try for this client may be scheduled: `now`
    /// when closed or half-open, the end of the cooldown when open. An
    /// open breaker consulted past its cooldown becomes half-open — the
    /// next attempt is the probe.
    pub fn earliest_attempt(&mut self, now: SimTime) -> SimTime {
        if self.state == BreakerState::Open {
            self.state = BreakerState::HalfOpen;
            if now < self.open_until {
                return self.open_until;
            }
        }
        now
    }
}

/// Complete fault/recovery configuration the engine consumes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// What to inject, and when.
    pub plan: FaultPlan,
    /// Kernel/admission retry backoff.
    pub retry: RetryPolicy,
    /// Per-client circuit breaker tuning.
    pub breaker: BreakerConfig,
}

impl FaultConfig {
    /// A config around `plan` with default recovery tuning.
    pub fn new(plan: FaultPlan) -> Self {
        FaultConfig { plan, ..FaultConfig::default() }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the breaker config.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Checks all component invariants.
    ///
    /// # Panics
    ///
    /// Panics when any component is invalid.
    pub fn validate(&self) {
        self.plan.validate();
        self.retry.validate();
        self.breaker.validate();
    }

    /// Builds the injector for a run seeded with `seed` (the engine's run
    /// seed; the injector folds in [`FAULT_SEED_SALT`]).
    pub fn injector(&self, seed: u64) -> FaultInjector {
        FaultInjector::new(self.plan.clone(), seed)
    }
}

/// The seeded draw engine consulted on the hot path. All verdicts come
/// from one SplitMix64 stream in event order, so a faulted run is
/// deterministic for a fixed seed regardless of worker count.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
}

impl FaultInjector {
    /// Builds an injector over `plan`, seeded from the run seed.
    pub fn new(mut plan: FaultPlan, seed: u64) -> Self {
        plan.validate();
        plan.stalls.sort_by_key(|w| w.from);
        FaultInjector { plan, rng: DetRng::new(seed ^ FAULT_SEED_SALT) }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws whether the kernel launched at `now` transiently fails.
    pub fn kernel_fails(&mut self, _now: SimTime) -> bool {
        self.plan.kernel_failure_p > 0.0 && self.rng.next_f64() < self.plan.kernel_failure_p
    }

    /// Draws whether a memory reservation at `now` transiently fails.
    pub fn alloc_fails(&mut self, _now: SimTime) -> bool {
        self.plan.alloc_failure_p > 0.0 && self.rng.next_f64() < self.plan.alloc_failure_p
    }

    /// Duration multiplier for a kernel enqueued at `now` (1.0 outside
    /// every slowdown window).
    pub fn slowdown_factor(&self, now: SimTime) -> f64 {
        for s in &self.plan.slowdowns {
            if s.window.contains(now) {
                return s.factor;
            }
        }
        1.0
    }

    /// If the device is stalled at `now`, the end of that stall window.
    pub fn stall_until(&self, now: SimTime) -> Option<SimTime> {
        self.plan.stalls.iter().find(|w| w.contains(now)).map(|w| w.until)
    }

    /// The retry RNG, forked off the fault stream: backoff jitter draws
    /// do not perturb fault verdicts.
    pub fn retry_rng(&mut self) -> DetRng {
        self.rng.fork(0x5E77)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn empty_plan_never_fires_and_draws_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(), 7);
        let probe = inj.rng.clone().next_u64();
        for i in 0..50 {
            assert!(!inj.kernel_fails(t(i)));
            assert!(!inj.alloc_fails(t(i)));
            assert_eq!(inj.slowdown_factor(t(i)), 1.0);
            assert_eq!(inj.stall_until(t(i)), None);
        }
        // Zero-probability checks must not consume RNG state.
        assert_eq!(inj.rng.clone().next_u64(), probe);
    }

    #[test]
    fn verdicts_are_deterministic_per_seed() {
        let plan = FaultPlan::new().with_kernel_failures(0.3).with_alloc_failures(0.2);
        let mut a = FaultInjector::new(plan.clone(), 42);
        let mut b = FaultInjector::new(plan.clone(), 42);
        let mut c = FaultInjector::new(plan, 43);
        let va: Vec<bool> = (0..200).map(|i| a.kernel_fails(t(i))).collect();
        let vb: Vec<bool> = (0..200).map(|i| b.kernel_fails(t(i))).collect();
        let vc: Vec<bool> = (0..200).map(|i| c.kernel_fails(t(i))).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc, "different seeds should disagree somewhere");
        assert!(va.iter().any(|&f| f), "p=0.3 over 200 draws should fire");
    }

    #[test]
    fn windows_govern_slowdown_and_stall() {
        let plan = FaultPlan::new()
            .with_slowdown(3.0, t(100), t(200))
            .with_stall(t(300), t(400));
        let inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.slowdown_factor(t(99)), 1.0);
        assert_eq!(inj.slowdown_factor(t(100)), 3.0);
        assert_eq!(inj.slowdown_factor(t(199)), 3.0);
        assert_eq!(inj.slowdown_factor(t(200)), 1.0);
        assert_eq!(inj.stall_until(t(299)), None);
        assert_eq!(inj.stall_until(t(300)), Some(t(400)));
        assert_eq!(inj.stall_until(t(400)), None);
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_stalls_are_rejected() {
        FaultPlan::new()
            .with_stall(t(0), t(100))
            .with_stall(t(50), t(150))
            .validate();
    }

    #[test]
    fn backoff_is_increasing_and_deadline_capped() {
        let p = RetryPolicy::default();
        p.validate();
        let mut rng = DetRng::new(9);
        let mut prev = SimDuration::ZERO;
        for attempt in 0..p.max_attempts {
            let d = p.backoff(attempt, &mut rng);
            assert!(d > prev, "attempt {attempt}: {d:?} !> {prev:?}");
            prev = d;
        }
        // Past the budget, or past the deadline: no retry.
        let mut rng = DetRng::new(9);
        assert_eq!(p.next_retry_at(t(0), p.max_attempts, None, &mut rng), None);
        assert_eq!(p.next_retry_at(t(0), 0, Some(t(1)), &mut rng), None);
        assert!(p.next_retry_at(t(0), 0, Some(t(1_000_000)), &mut rng).is_some());
    }

    #[test]
    fn breaker_opens_probes_and_sheds() {
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_micros(100),
            max_trips: 2,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert_eq!(b.record_failure(t(0)), BreakerEvent::None);
        assert_eq!(b.record_failure(t(10)), BreakerEvent::Opened { until: t(110) });
        assert_eq!(b.state(), BreakerState::Open);
        // While open, attempts are deferred to the cooldown edge.
        assert_eq!(b.earliest_attempt(t(50)), t(110));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The probe failing spends the trip budget.
        assert_eq!(b.record_failure(t(110)), BreakerEvent::Shed);
    }

    #[test]
    fn breaker_probe_success_closes() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_micros(100),
            max_trips: 5,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert!(matches!(b.record_failure(t(0)), BreakerEvent::Opened { .. }));
        let _ = b.earliest_attempt(t(200));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }
}
