//! Counters/histogram snapshot of a trace, including the scheduler-overhead
//! attribution behind the `overhead` report.
//!
//! # Overhead attribution
//!
//! Token scheduling costs GPU time only when the device sits **idle**
//! because of a hand-off: the granted gang must wake (`switch_latency`) and
//! submit its first kernel (`launch_overhead`) before the device has work
//! again — unless overflow kernels from the previous holder mask the
//! bubble, which is exactly why the paper's overhead stays under 2%.
//! [`TraceStats`] therefore measures, from the Full-mode kernel spans, the
//! device-idle time that overlaps a *hand-off window* `[t, t + horizon]`
//! anchored at each token grant `t`. Idle with no nearby grant (client
//! think time, CPU phases) is not charged to the scheduler.

use crate::{Trace, TraceKind};
use microjson::Value;
use simtime::SimDuration;

/// Nearest-rank distribution summary in microseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantumDist {
    /// Number of quanta observed.
    pub count: u64,
    /// Smallest quantum (µs).
    pub min_us: f64,
    /// Mean quantum (µs).
    pub mean_us: f64,
    /// Median (µs).
    pub p50_us: f64,
    /// 90th percentile (µs).
    pub p90_us: f64,
    /// Largest quantum (µs).
    pub max_us: f64,
}

impl QuantumDist {
    fn of(mut us: Vec<f64>) -> QuantumDist {
        if us.is_empty() {
            return QuantumDist::default();
        }
        us.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let rank = |q: f64| us[(((us.len() as f64) * q).ceil() as usize).clamp(1, us.len()) - 1];
        QuantumDist {
            count: us.len() as u64,
            min_us: us[0],
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            max_us: us[us.len() - 1],
        }
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count)),
            ("min_us".into(), Value::Float(self.min_us)),
            ("mean_us".into(), Value::Float(self.mean_us)),
            ("p50_us".into(), Value::Float(self.p50_us)),
            ("p90_us".into(), Value::Float(self.p90_us)),
            ("max_us".into(), Value::Float(self.max_us)),
        ])
    }
}

/// The compact counters snapshot of one trace.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Token grants (= scheduler switches that handed the token to a job).
    pub token_switches: u64,
    /// Quantum-length distribution (GPU µs per completed quantum).
    pub quantum: QuantumDist,
    /// Attributed GPU µs per client, ascending client id — the sum of its
    /// quanta, overflow charges included (the paper's metered `D_j` view).
    pub per_client_gpu_us: Vec<(u32, f64)>,
    /// GPU µs charged while the launching job no longer held the token.
    pub overflow_us: f64,
    /// Number of overflow-charged kernels.
    pub overflow_count: u64,
    /// Kernel executions seen (Full mode only; 0 in Sampled traces).
    pub kernel_count: u64,
    /// Total device busy µs summed over devices (Full mode only).
    pub device_busy_us: f64,
    /// Last event timestamp (µs) — the traced run's makespan.
    pub makespan_us: f64,
    /// Naive upper bound on switching cost: `token_switches × horizon` µs.
    pub handoff_bound_us: f64,
    /// Measured scheduler overhead: device-idle µs overlapping a hand-off
    /// window. `None` when the trace has no kernel spans (Sampled mode).
    pub scheduler_overhead_us: Option<f64>,
    /// Events the flight-recorder ring overwrote. Any non-zero value means
    /// every number above is computed from a truncated event stream.
    pub dropped_events: u64,
}

impl TraceStats {
    /// Computes the snapshot. `handoff_horizon` is the engine's token
    /// hand-off latency (switch latency + kernel launch overhead): idle
    /// within this window after a grant is charged to the scheduler.
    pub fn from_trace(trace: &Trace, handoff_horizon: SimDuration) -> TraceStats {
        let mut grants_ns: Vec<u64> = Vec::new();
        let mut quanta_us: Vec<f64> = Vec::new();
        let mut per_client: Vec<(u32, f64)> = Vec::new();
        let mut overflow_us = 0.0;
        let mut overflow_count = 0u64;
        let mut kernel_count = 0u64;
        // Kernel spans per device; device ids are small and dense.
        let mut spans: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut makespan_ns = 0u64;
        for e in &trace.events {
            makespan_ns = makespan_ns.max(e.at.as_nanos());
            match e.kind {
                TraceKind::TokenGrant { .. } => grants_ns.push(e.at.as_nanos()),
                TraceKind::QuantumEnd { client, gpu, .. } => {
                    let us = gpu.as_nanos() as f64 / 1000.0;
                    quanta_us.push(us);
                    match per_client.iter_mut().find(|(c, _)| *c == client) {
                        Some((_, total)) => *total += us,
                        None => per_client.push((client, us)),
                    }
                }
                TraceKind::OverflowCharge { gpu, .. } => {
                    overflow_us += gpu.as_nanos() as f64 / 1000.0;
                    overflow_count += 1;
                }
                TraceKind::KernelLaunch { device, start, end, .. } => {
                    kernel_count += 1;
                    let d = device as usize;
                    if spans.len() <= d {
                        spans.resize_with(d + 1, Vec::new);
                    }
                    spans[d].push((start.as_nanos(), end.as_nanos()));
                    makespan_ns = makespan_ns.max(end.as_nanos());
                }
                _ => {}
            }
        }
        per_client.sort_by_key(|&(c, _)| c);

        let horizon_ns = handoff_horizon.as_nanos();
        let mut busy_ns = 0u64;
        let mut overhead_ns = 0u64;
        for dev_spans in &spans {
            // Launch order is execution order on a non-preemptive device,
            // so spans arrive sorted and disjoint.
            debug_assert!(dev_spans.windows(2).all(|w| w[0].1 <= w[1].0));
            busy_ns += dev_spans.iter().map(|(s, e)| e - s).sum::<u64>();
            for w in dev_spans.windows(2) {
                let (gap_start, gap_end) = (w[0].1, w[1].0);
                if gap_start >= gap_end {
                    continue;
                }
                // Union of hand-off windows [t, t + horizon] over the gap.
                let lo = grants_ns.partition_point(|&t| t + horizon_ns <= gap_start);
                let hi = grants_ns.partition_point(|&t| t < gap_end);
                let mut covered_to = gap_start;
                for &t in &grants_ns[lo..hi] {
                    let s = t.max(covered_to).min(gap_end);
                    let e = (t + horizon_ns).min(gap_end);
                    if e > s {
                        overhead_ns += e - s;
                        covered_to = e;
                    }
                }
            }
        }

        TraceStats {
            token_switches: grants_ns.len() as u64,
            quantum: QuantumDist::of(quanta_us),
            per_client_gpu_us: per_client,
            overflow_us,
            overflow_count,
            kernel_count,
            device_busy_us: busy_ns as f64 / 1000.0,
            makespan_us: makespan_ns as f64 / 1000.0,
            handoff_bound_us: grants_ns.len() as f64 * (horizon_ns as f64 / 1000.0),
            scheduler_overhead_us: (kernel_count > 0).then_some(overhead_ns as f64 / 1000.0),
            dropped_events: trace.dropped,
        }
    }

    /// Measured scheduler overhead as a fraction of the makespan, when the
    /// trace carried kernel spans.
    pub fn overhead_fraction(&self) -> Option<f64> {
        let overhead = self.scheduler_overhead_us?;
        (self.makespan_us > 0.0).then(|| overhead / self.makespan_us)
    }

    /// The snapshot as a JSON object (the `trace_stats` schema consumed by
    /// `BENCH_engine.json` and the CI artifact checks).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("token_switches".into(), Value::UInt(self.token_switches)),
            ("quantum_us".into(), self.quantum.to_json()),
            (
                "per_client_gpu_us".into(),
                Value::Array(
                    self.per_client_gpu_us
                        .iter()
                        .map(|&(c, us)| {
                            Value::Object(vec![
                                ("client".into(), Value::UInt(u64::from(c))),
                                ("gpu_us".into(), Value::Float(us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("overflow_us".into(), Value::Float(self.overflow_us)),
            ("overflow_count".into(), Value::UInt(self.overflow_count)),
            ("kernel_count".into(), Value::UInt(self.kernel_count)),
            ("device_busy_us".into(), Value::Float(self.device_busy_us)),
            ("makespan_us".into(), Value::Float(self.makespan_us)),
            ("handoff_bound_us".into(), Value::Float(self.handoff_bound_us)),
            (
                "scheduler_overhead_us".into(),
                self.scheduler_overhead_us.map_or(Value::Null, Value::Float),
            ),
            (
                "overhead_fraction".into(),
                self.overhead_fraction().map_or(Value::Null, Value::Float),
            ),
            ("dropped_events".into(), Value::UInt(self.dropped_events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SwitchReason, TraceBuffer, TraceConfig};
    use simtime::SimTime;

    fn grant(b: &mut TraceBuffer, at_us: u64, job: u64) {
        b.record(
            SimTime::from_micros(at_us),
            TraceKind::TokenGrant {
                job,
                client: Some(job as u32),
                reason: SwitchReason::QuantumExpired,
            },
        );
    }

    fn kernel(b: &mut TraceBuffer, start_us: u64, end_us: u64) {
        b.record(
            SimTime::from_micros(start_us),
            TraceKind::KernelLaunch {
                job: 0,
                client: 0,
                device: 0,
                node: 0,
                start: SimTime::from_micros(start_us),
                end: SimTime::from_micros(end_us),
            },
        );
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = TraceStats::from_trace(&Trace::default(), SimDuration::from_micros(100));
        assert_eq!(s.token_switches, 0);
        assert_eq!(s.quantum.count, 0);
        assert_eq!(s.scheduler_overhead_us, None);
        assert_eq!(s.overhead_fraction(), None);
    }

    #[test]
    fn quantum_distribution_and_attribution() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled());
        for (i, us) in [100u64, 200, 300, 400].into_iter().enumerate() {
            b.record(
                SimTime::from_micros(1000 * (i as u64 + 1)),
                TraceKind::QuantumEnd {
                    job: i as u64,
                    client: (i % 2) as u32,
                    gpu: SimDuration::from_micros(us),
                },
            );
        }
        let s = TraceStats::from_trace(&b.finish(), SimDuration::from_micros(85));
        assert_eq!(s.quantum.count, 4);
        assert_eq!(s.quantum.min_us, 100.0);
        assert_eq!(s.quantum.max_us, 400.0);
        assert_eq!(s.quantum.mean_us, 250.0);
        assert_eq!(s.quantum.p50_us, 200.0);
        // client 0 got quanta 100+300, client 1 got 200+400.
        assert_eq!(s.per_client_gpu_us, vec![(0, 400.0), (1, 600.0)]);
        assert_eq!(s.scheduler_overhead_us, None, "no kernel spans in sampled mode");
    }

    #[test]
    fn idle_near_grant_is_overhead_idle_elsewhere_is_not() {
        let mut b = TraceBuffer::new(&TraceConfig::full());
        kernel(&mut b, 0, 1000);
        // Token hand-off at t=1000; device idle until the granted gang's
        // first kernel at t=1080 -> 80 µs of attributable bubble.
        grant(&mut b, 1000, 1);
        kernel(&mut b, 1080, 2000);
        // Idle gap 2000..2500 with no grant anywhere near: not overhead.
        kernel(&mut b, 2500, 3000);
        let s = TraceStats::from_trace(&b.finish(), SimDuration::from_micros(100));
        assert_eq!(s.kernel_count, 3);
        assert_eq!(s.scheduler_overhead_us, Some(80.0));
        assert_eq!(s.token_switches, 1);
        let f = s.overhead_fraction().unwrap();
        assert!((f - 80.0 / 3000.0).abs() < 1e-12);
    }

    #[test]
    fn handoff_window_caps_attribution() {
        let mut b = TraceBuffer::new(&TraceConfig::full());
        kernel(&mut b, 0, 1000);
        grant(&mut b, 1000, 1);
        // The gap runs 400 µs past the grant, but only the 100 µs hand-off
        // window is the scheduler's fault (the rest is a CPU phase).
        kernel(&mut b, 1400, 2000);
        let s = TraceStats::from_trace(&b.finish(), SimDuration::from_micros(100));
        assert_eq!(s.scheduler_overhead_us, Some(100.0));
        assert_eq!(s.handoff_bound_us, 100.0);
    }

    #[test]
    fn masked_handoff_costs_nothing() {
        let mut b = TraceBuffer::new(&TraceConfig::full());
        // Overflow kernels keep the device busy across the hand-off.
        kernel(&mut b, 0, 1200);
        grant(&mut b, 1000, 1);
        kernel(&mut b, 1200, 2000);
        let s = TraceStats::from_trace(&b.finish(), SimDuration::from_micros(100));
        assert_eq!(s.scheduler_overhead_us, Some(0.0));
    }

    #[test]
    fn stats_json_roundtrips() {
        let mut b = TraceBuffer::new(&TraceConfig::full());
        kernel(&mut b, 0, 500);
        grant(&mut b, 500, 1);
        b.record(
            SimTime::from_micros(600),
            TraceKind::OverflowCharge {
                job: 0,
                client: 0,
                device: 0,
                gpu: SimDuration::from_micros(40),
            },
        );
        let s = TraceStats::from_trace(&b.finish(), SimDuration::from_micros(85));
        let text = s.to_json().to_string();
        let doc = Value::parse(&text).unwrap();
        assert_eq!(doc.get("token_switches").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("overflow_count").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("overflow_us").unwrap().as_f64(), Some(40.0));
        assert_eq!(doc.get("dropped_events").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn ring_drops_surface_in_stats() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled().with_ring(2));
        for i in 0..5u64 {
            b.record(
                SimTime::from_micros(i),
                TraceKind::ClientFinished { client: i as u32 },
            );
        }
        let s = TraceStats::from_trace(&b.finish(), SimDuration::from_micros(85));
        assert_eq!(s.dropped_events, 3);
        let doc = Value::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(doc.get("dropped_events").unwrap().as_u64(), Some(3));
    }
}
