#![deny(missing_docs)]

//! Deterministic structured tracing for the serving stack.
//!
//! The serving engine records typed [`TraceEvent`]s — token movements with
//! their reason, quantum boundaries, cost-threshold crossings, cooperative
//! yields, kernel enqueue/launch/complete, overflow charges and client
//! lifecycle — into a [`TraceBuffer`]: a pre-allocated arena (optionally a
//! bounded ring) that allocates nothing in steady state. Every event is
//! stamped with its virtual [`SimTime`] and a monotonic sequence number, so
//! a trace of a deterministic run is **byte-identical** however the
//! surrounding harness is parallelized: the simulation owning the buffer is
//! single-threaded on a virtual clock, and nothing in here consults wall
//! clocks, thread ids or iteration order of unordered containers.
//!
//! Two exporters turn a finished [`Trace`] into artifacts:
//!
//! * [`export::chrome_trace_json`] — Chrome trace-event JSON loadable in
//!   Perfetto / `chrome://tracing`, one track per client plus one per GPU
//!   device;
//! * [`stats::TraceStats`] — a compact counters/histogram snapshot (token
//!   switches, quantum-length distribution, per-client attributed GPU µs,
//!   overflow µs, scheduler-overhead µs) behind the `overhead` report.

use simtime::{SimDuration, SimTime};
use std::fmt;

pub mod export;
pub mod stats;

pub use export::{chrome_trace, chrome_trace_json, TraceMeta};
pub use stats::TraceStats;

/// How much the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing. The hot path pays one predictable branch per
    /// would-be event — the `perfsuite` guardrail holds this to noise.
    #[default]
    Off,
    /// Record the low-frequency scheduling and lifecycle events (token
    /// movements, quantum ends, threshold crossings, yields, overflow
    /// charges, admissions) but not the per-kernel firehose. A sampled
    /// trace of a full-scale experiment stays in the tens of thousands of
    /// events.
    Sampled,
    /// Everything, including one enqueue/launch/complete triple per GPU
    /// kernel. Needed for device-idle overhead attribution.
    Full,
}

/// Tracing configuration carried by the engine config.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Verbosity.
    pub mode: TraceMode,
    /// When set, keep only the most recent `n` events (a flight-recorder
    /// ring); dropped-event count is reported in the finished [`Trace`].
    /// `None` grows the arena unboundedly.
    pub ring_capacity: Option<usize>,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> TraceConfig {
        TraceConfig::default()
    }

    /// Scheduling/lifecycle events only.
    pub fn sampled() -> TraceConfig {
        TraceConfig { mode: TraceMode::Sampled, ring_capacity: None }
    }

    /// Everything including per-kernel events.
    pub fn full() -> TraceConfig {
        TraceConfig { mode: TraceMode::Full, ring_capacity: None }
    }

    /// Bounds the buffer to the most recent `n` events.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_ring(mut self, n: usize) -> TraceConfig {
        assert!(n > 0, "ring capacity must be positive");
        self.ring_capacity = Some(n);
        self
    }

    /// Whether any events are recorded.
    pub fn is_on(&self) -> bool {
        self.mode != TraceMode::Off
    }
}

/// Why the token moved (carried on `Verdict::Moved` and on the
/// grant/revoke trace events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchReason {
    /// A job registered and the policy granted it the token.
    Register,
    /// The holder deregistered and the token passed on.
    Deregister,
    /// The cost-accumulation meter crossed the quantum threshold
    /// `T_j = Q * C_j / D_j` (the paper's mechanism).
    QuantumExpired,
    /// A wall-clock quantum timer fired (the Figure 19 ablation meter).
    WallClockTimer,
    /// The token-hold watchdog revoked a holder whose GPU progress had
    /// stalled past its patience window (faults/recovery layer).
    WatchdogStall,
}

impl SwitchReason {
    /// Stable kebab-case label used in exported JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            SwitchReason::Register => "register",
            SwitchReason::Deregister => "deregister",
            SwitchReason::QuantumExpired => "quantum-expired",
            SwitchReason::WallClockTimer => "wall-clock-timer",
            SwitchReason::WatchdogStall => "watchdog-stall",
        }
    }
}

impl fmt::Display for SwitchReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened. Ids are raw (`u64` job, `u32` client/device/node) so this
/// crate sits below the serving layer without a dependency cycle.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A client connected and its memory was reserved.
    ClientAdmitted {
        /// The admitted client.
        client: u32,
        /// The device its activations were placed on.
        device: u32,
    },
    /// A client's admission was deferred to the bounded wait queue; the
    /// attribution layer opens an admission-wait phase here.
    AdmissionQueued {
        /// The parked client.
        client: u32,
    },
    /// A run was deferred because the lifecycle manager is still loading or
    /// warming the target model version; the attribution layer opens a
    /// load-wait phase here.
    LifecycleWait {
        /// The waiting client.
        client: u32,
    },
    /// A client's admission failed on GPU memory.
    ClientRejectedOom {
        /// The rejected client.
        client: u32,
        /// Bytes the admission attempt needed.
        requested: u64,
        /// Bytes that were free.
        available: u64,
    },
    /// A client finished its whole session.
    ClientFinished {
        /// The finished client.
        client: u32,
    },
    /// A `Session::Run` registered with the scheduler.
    RunRegistered {
        /// The new job.
        job: u64,
        /// Its owner.
        client: u32,
    },
    /// A `Session::Run` completed all nodes.
    RunCompleted {
        /// The finished job.
        job: u64,
        /// Its owner.
        client: u32,
    },
    /// A run blew through its deadline and was cancelled.
    DeadlineCancelled {
        /// The cancelled job.
        job: u64,
        /// Its owner.
        client: u32,
    },
    /// The token was taken from a job.
    TokenRevoke {
        /// The previous holder.
        job: u64,
        /// Its owner, when still known (a job revoked *because* it
        /// deregistered has already left the job table).
        client: Option<u32>,
        /// Why the token moved.
        reason: SwitchReason,
    },
    /// The token was granted to a job.
    TokenGrant {
        /// The new holder.
        job: u64,
        /// Its owner, when known.
        client: Option<u32>,
        /// Why the token moved.
        reason: SwitchReason,
    },
    /// A quantum ended: the holder's accumulated GPU time was flushed.
    /// By convention the quantum span is `[at - gpu, at]`.
    QuantumEnd {
        /// The job whose quantum ended.
        job: u64,
        /// Its owner.
        client: u32,
        /// GPU duration received during the quantum (including overflow
        /// charges).
        gpu: SimDuration,
    },
    /// A job's cumulated profiled cost crossed its quantum threshold.
    CostThreshold {
        /// The crossing job.
        job: u64,
        /// Its owner.
        client: u32,
        /// Cumulated cost at the crossing (cost units).
        cumulated: u64,
        /// The threshold `T_j` it crossed.
        threshold: u64,
    },
    /// A gang thread hit the cooperative yield gate and parked (first
    /// blocked dispatch per suspension, not one event per parked thread).
    YieldBlock {
        /// The suspended job.
        job: u64,
        /// Its owner.
        client: u32,
    },
    /// A previously yield-blocked job was granted the token again.
    YieldUnblock {
        /// The resumed job.
        job: u64,
        /// Its owner.
        client: u32,
    },
    /// A kernel completed for a job that no longer holds the token: its
    /// cost is still charged to that job (the paper's overflow rule).
    OverflowCharge {
        /// The charged job.
        job: u64,
        /// Its owner.
        client: u32,
        /// Device the kernel ran on.
        device: u32,
        /// GPU duration charged.
        gpu: SimDuration,
    },
    /// A kernel was submitted to the device driver queue (Full mode only).
    KernelEnqueue {
        /// The launching job.
        job: u64,
        /// Its owner.
        client: u32,
        /// Target device.
        device: u32,
        /// Graph node of the kernel.
        node: u32,
    },
    /// A kernel started executing on the device (Full mode only).
    KernelLaunch {
        /// The launching job.
        job: u64,
        /// Its owner.
        client: u32,
        /// Executing device.
        device: u32,
        /// Graph node of the kernel.
        node: u32,
        /// Execution start.
        start: SimTime,
        /// Execution end.
        end: SimTime,
    },
    /// A kernel's completion was observed by the engine (Full mode only).
    KernelComplete {
        /// The launching job.
        job: u64,
        /// Its owner.
        client: u32,
        /// Executing device.
        device: u32,
        /// Graph node of the kernel.
        node: u32,
        /// GPU duration of the kernel.
        gpu: SimDuration,
    },
    /// The streaming drift detector flagged a client's offline profile as
    /// stale mid-run (telemetry layer). Values are integer-encoded so the
    /// kind stays `Eq`: µs are rounded, the relative deviation is
    /// parts-per-million.
    DriftAlert {
        /// The drifting client.
        client: u32,
        /// Smoothed observed quantum length, µs.
        observed_us: u64,
        /// Expected (target) quantum length, µs.
        expected_us: u64,
        /// `|observed - expected| / expected`, in parts-per-million.
        deviation_ppm: u64,
    },
    /// The SLO monitor's multi-window burn rate crossed its alerting
    /// threshold for one latency objective (telemetry layer). Burn rates
    /// are integer-encoded ×1e6 so the kind stays `Eq`.
    SloBurnAlert {
        /// Index of the SLO objective in the telemetry config.
        slo: u32,
        /// Short-window burn rate, ×1e6.
        short_ppm: u64,
        /// Long-window burn rate, ×1e6.
        long_ppm: u64,
    },
    /// A kernel launch transiently failed (injected fault).
    KernelFault {
        /// The launching job.
        job: u64,
        /// Its owner.
        client: u32,
        /// Target device.
        device: u32,
        /// Graph node of the kernel.
        node: u32,
        /// 0-based attempt that failed.
        attempt: u32,
    },
    /// A memory reservation transiently failed during admission
    /// (injected fault).
    AllocFault {
        /// The affected client.
        client: u32,
        /// 0-based admission attempt that failed.
        attempt: u32,
    },
    /// A retry was scheduled after deterministic exponential backoff.
    RetryScheduled {
        /// The retrying job (`u64::MAX` for an admission retry, which has
        /// no job yet).
        job: u64,
        /// Its owner.
        client: u32,
        /// Graph node being retried (`u32::MAX` for admission).
        node: u32,
        /// 0-based attempt the retry will make.
        attempt: u32,
        /// Backoff delay until the retry.
        delay: SimDuration,
    },
    /// A client's circuit breaker changed state.
    BreakerTransition {
        /// The client the breaker guards.
        client: u32,
        /// New breaker state, kebab-case ("closed"/"open"/"half-open").
        state: &'static str,
    },
    /// The token-hold watchdog revoked the token from a stalled holder;
    /// the stall is charged to the holder like an overflow kernel.
    WatchdogRevoke {
        /// The stalled (now revoked) holder.
        job: u64,
        /// Its owner.
        client: u32,
        /// How long the holder had made no GPU progress, µs.
        stalled_us: u64,
    },
    /// The device entered a planned stall window (injected fault).
    DeviceStall {
        /// The stalled device.
        device: u32,
        /// Window end, µs since run start.
        until_us: u64,
    },
    /// A model version's weights started transferring to the device
    /// (lifecycle layer).
    VersionLoad {
        /// Deployment index in the lifecycle plan.
        model: u32,
        /// Version number (1-based).
        version: u32,
        /// Weight bytes being loaded.
        bytes: u64,
    },
    /// A freshly loaded version completed one warm-up run (lifecycle
    /// layer).
    WarmupRun {
        /// Deployment index in the lifecycle plan.
        model: u32,
        /// Version number (1-based).
        version: u32,
        /// Warm-up run ordinal (1-based).
        run: u32,
    },
    /// An idle version was evicted to make room for a load (lifecycle
    /// layer).
    Evict {
        /// Deployment index in the lifecycle plan.
        model: u32,
        /// Version number (1-based).
        version: u32,
        /// Weight bytes freed.
        bytes: u64,
    },
    /// A canary candidate was promoted to the serving version (lifecycle
    /// layer).
    CanaryPromote {
        /// Deployment index in the lifecycle plan.
        model: u32,
        /// The promoted version number (1-based).
        version: u32,
    },
    /// A canary candidate was rolled back (lifecycle layer).
    CanaryRollback {
        /// Deployment index in the lifecycle plan.
        model: u32,
        /// The rejected version number (1-based).
        version: u32,
    },
    /// A version stopped accepting new runs and started draining; when it
    /// later unloads the engine records a second `Drain` with
    /// `inflight == 0` (lifecycle layer).
    Drain {
        /// Deployment index in the lifecycle plan.
        model: u32,
        /// Version number (1-based).
        version: u32,
        /// Runs still in flight at this instant.
        inflight: u32,
    },
    /// The control plane's degradation ladder changed rungs (control
    /// layer).
    ControlTransition {
        /// The rung left, kebab-case ("healthy"/"degraded"/"shedding").
        from: &'static str,
        /// The rung entered.
        to: &'static str,
    },
    /// A new admission was rejected by the Shedding rung (control layer).
    AdmissionShed {
        /// The rejected client.
        client: u32,
    },
    /// A run's batch hint was shrunk by the Degraded rung before scheduler
    /// registration (control layer).
    BatchShrink {
        /// The affected client.
        client: u32,
        /// The client's configured batch hint.
        from: u64,
        /// The shrunk hint the run registered with.
        to: u64,
    },
    /// A drift alert triggered an in-run rebind of a freshly scaled
    /// profile (control layer).
    ProfileRebind {
        /// The drifting client whose model was rebound.
        client: u32,
        /// GPU-duration scale applied, parts-per-million (1e6 = unchanged).
        scale_ppm: u64,
    },
    /// A laxity-negative run was cancelled early by the control loop —
    /// its expected remaining GPU work could no longer fit before its
    /// deadline (control layer).
    LaxityCancel {
        /// The cancelled job.
        job: u64,
        /// Its owner.
        client: u32,
        /// How far past the deadline the run would have landed, µs.
        deficit_us: u64,
    },
    /// The cluster router stamped an arriving run and sent it to the
    /// cheapest device (cluster layer).
    ClusterRoute {
        /// The routed client.
        client: u32,
        /// The chosen device.
        device: u32,
        /// The winning estimated completion cost, µs.
        cost_us: u64,
    },
    /// The reconfiguration plan moved a model between devices: a drain on
    /// `from` paired with a load on `to` (cluster layer).
    ClusterMigrate {
        /// Deployment index in the lifecycle plan.
        model: u32,
        /// Device draining the model.
        from: u32,
        /// Device loading the model.
        to: u32,
    },
    /// One `ClusterTick` solved the min-cost flow and executed its plan
    /// (cluster layer).
    ClusterReconfig {
        /// Loads issued by this plan.
        loads: u32,
        /// Drains issued by this plan.
        drains: u32,
    },
}

impl TraceKind {
    /// Whether this is one of the per-kernel (Full-mode-only) events.
    pub fn is_kernel(&self) -> bool {
        matches!(
            self,
            TraceKind::KernelEnqueue { .. }
                | TraceKind::KernelLaunch { .. }
                | TraceKind::KernelComplete { .. }
        )
    }

    /// Rewrites the client, device and job ids embedded in this kind —
    /// the typed half of the sharded-run trace merge, where each device
    /// group records with group-local ids that must be lifted into the
    /// global namespace. Sentinel ids (`u64::MAX` job / `u32::MAX` node on
    /// admission retries) pass through unchanged; lifecycle and SLO events
    /// carry plan-local indices, not engine ids, and are left untouched.
    pub fn remap_ids(
        &mut self,
        client_of: &dyn Fn(u32) -> u32,
        device_of: &dyn Fn(u32) -> u32,
        job_of: &dyn Fn(u64) -> u64,
    ) {
        let j = |job: &mut u64| {
            if *job != u64::MAX {
                *job = job_of(*job);
            }
        };
        match self {
            TraceKind::ClientRejectedOom { client, .. }
            | TraceKind::ClientFinished { client }
            | TraceKind::AdmissionQueued { client }
            | TraceKind::LifecycleWait { client }
            | TraceKind::DriftAlert { client, .. }
            | TraceKind::AllocFault { client, .. }
            | TraceKind::BreakerTransition { client, .. }
            | TraceKind::AdmissionShed { client }
            | TraceKind::BatchShrink { client, .. }
            | TraceKind::ProfileRebind { client, .. } => *client = client_of(*client),
            TraceKind::ClientAdmitted { client, device }
            | TraceKind::ClusterRoute { client, device, .. } => {
                *client = client_of(*client);
                *device = device_of(*device);
            }
            TraceKind::ClusterMigrate { from, to, .. } => {
                *from = device_of(*from);
                *to = device_of(*to);
            }
            TraceKind::RunRegistered { job, client }
            | TraceKind::RunCompleted { job, client }
            | TraceKind::DeadlineCancelled { job, client }
            | TraceKind::QuantumEnd { job, client, .. }
            | TraceKind::CostThreshold { job, client, .. }
            | TraceKind::YieldBlock { job, client }
            | TraceKind::YieldUnblock { job, client }
            | TraceKind::RetryScheduled { job, client, .. }
            | TraceKind::WatchdogRevoke { job, client, .. }
            | TraceKind::LaxityCancel { job, client, .. } => {
                *client = client_of(*client);
                j(job);
            }
            TraceKind::TokenRevoke { job, client, .. }
            | TraceKind::TokenGrant { job, client, .. } => {
                if let Some(c) = client {
                    *c = client_of(*c);
                }
                j(job);
            }
            TraceKind::OverflowCharge { job, client, device, .. }
            | TraceKind::KernelEnqueue { job, client, device, .. }
            | TraceKind::KernelLaunch { job, client, device, .. }
            | TraceKind::KernelComplete { job, client, device, .. }
            | TraceKind::KernelFault { job, client, device, .. } => {
                *client = client_of(*client);
                *device = device_of(*device);
                j(job);
            }
            TraceKind::DeviceStall { device, .. } => *device = device_of(*device),
            TraceKind::SloBurnAlert { .. }
            | TraceKind::VersionLoad { .. }
            | TraceKind::WarmupRun { .. }
            | TraceKind::Evict { .. }
            | TraceKind::CanaryPromote { .. }
            | TraceKind::CanaryRollback { .. }
            | TraceKind::Drain { .. }
            | TraceKind::ControlTransition { .. }
            | TraceKind::ClusterReconfig { .. } => {}
        }
    }

    /// The client the event belongs to, when known.
    pub fn client(&self) -> Option<u32> {
        match *self {
            TraceKind::ClientAdmitted { client, .. }
            | TraceKind::ClientRejectedOom { client, .. }
            | TraceKind::ClientFinished { client }
            | TraceKind::AdmissionQueued { client }
            | TraceKind::LifecycleWait { client }
            | TraceKind::RunRegistered { client, .. }
            | TraceKind::RunCompleted { client, .. }
            | TraceKind::DeadlineCancelled { client, .. }
            | TraceKind::QuantumEnd { client, .. }
            | TraceKind::CostThreshold { client, .. }
            | TraceKind::YieldBlock { client, .. }
            | TraceKind::YieldUnblock { client, .. }
            | TraceKind::OverflowCharge { client, .. }
            | TraceKind::KernelEnqueue { client, .. }
            | TraceKind::KernelLaunch { client, .. }
            | TraceKind::KernelComplete { client, .. }
            | TraceKind::DriftAlert { client, .. }
            | TraceKind::KernelFault { client, .. }
            | TraceKind::AllocFault { client, .. }
            | TraceKind::RetryScheduled { client, .. }
            | TraceKind::BreakerTransition { client, .. }
            | TraceKind::WatchdogRevoke { client, .. }
            | TraceKind::AdmissionShed { client }
            | TraceKind::BatchShrink { client, .. }
            | TraceKind::ProfileRebind { client, .. }
            | TraceKind::LaxityCancel { client, .. }
            | TraceKind::ClusterRoute { client, .. } => Some(client),
            TraceKind::TokenRevoke { client, .. } | TraceKind::TokenGrant { client, .. } => client,
            TraceKind::SloBurnAlert { .. }
            | TraceKind::DeviceStall { .. }
            | TraceKind::VersionLoad { .. }
            | TraceKind::WarmupRun { .. }
            | TraceKind::Evict { .. }
            | TraceKind::CanaryPromote { .. }
            | TraceKind::CanaryRollback { .. }
            | TraceKind::Drain { .. }
            | TraceKind::ControlTransition { .. }
            | TraceKind::ClusterMigrate { .. }
            | TraceKind::ClusterReconfig { .. } => None,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, dense from 0 per run (dropped ring
    /// entries leave gaps at the front, never in the middle).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        let opt = |c: Option<u32>| c.map_or("-".to_string(), |c| format!("client{c}"));
        match self.kind {
            TraceKind::ClientAdmitted { client, device } => {
                write!(f, "client{client} admitted (gpu{device})")
            }
            TraceKind::AdmissionQueued { client } => {
                write!(f, "client{client} queued for admission")
            }
            TraceKind::LifecycleWait { client } => {
                write!(f, "client{client} waiting on lifecycle load/warmup")
            }
            TraceKind::ClientRejectedOom { client, requested, available } => write!(
                f,
                "client{client} rejected (oom: {requested} B requested, {available} B free)"
            ),
            TraceKind::ClientFinished { client } => write!(f, "client{client} finished"),
            TraceKind::RunRegistered { job, client } => {
                write!(f, "job{job} registered (client{client})")
            }
            TraceKind::RunCompleted { job, client } => {
                write!(f, "job{job} completed (client{client})")
            }
            TraceKind::DeadlineCancelled { job, client } => {
                write!(f, "job{job} cancelled by deadline (client{client})")
            }
            TraceKind::TokenRevoke { job, client, reason } => {
                write!(f, "token revoked from job{job} ({}, {reason})", opt(client))
            }
            TraceKind::TokenGrant { job, client, reason } => {
                write!(f, "token granted to job{job} ({}, {reason})", opt(client))
            }
            TraceKind::QuantumEnd { job, client, gpu } => {
                write!(f, "quantum end job{job} (client{client}, gpu {gpu})")
            }
            TraceKind::CostThreshold { job, client, cumulated, threshold } => write!(
                f,
                "cost threshold job{job} (client{client}, {cumulated}/{threshold} units)"
            ),
            TraceKind::YieldBlock { job, client } => {
                write!(f, "yield block job{job} (client{client})")
            }
            TraceKind::YieldUnblock { job, client } => {
                write!(f, "yield unblock job{job} (client{client})")
            }
            TraceKind::OverflowCharge { job, client, device, gpu } => write!(
                f,
                "overflow charge job{job} (client{client}, gpu{device}, {gpu})"
            ),
            TraceKind::KernelEnqueue { job, client, device, node } => write!(
                f,
                "kernel enqueue job{job} node{node} (client{client}, gpu{device})"
            ),
            TraceKind::KernelLaunch { job, client, device, node, start, end } => write!(
                f,
                "kernel launch job{job} node{node} (client{client}, gpu{device}, {start}..{end})"
            ),
            TraceKind::KernelComplete { job, client, device, node, gpu } => write!(
                f,
                "kernel complete job{job} node{node} (client{client}, gpu{device}, {gpu})"
            ),
            TraceKind::DriftAlert { client, observed_us, expected_us, deviation_ppm } => write!(
                f,
                "drift alert client{client} (observed {observed_us}us vs expected \
                 {expected_us}us, deviation {deviation_ppm}ppm)"
            ),
            TraceKind::SloBurnAlert { slo, short_ppm, long_ppm } => write!(
                f,
                "slo burn alert objective{slo} (short {short_ppm}ppm, long {long_ppm}ppm)"
            ),
            TraceKind::KernelFault { job, client, device, node, attempt } => write!(
                f,
                "kernel fault job{job} node{node} (client{client}, gpu{device}, attempt {attempt})"
            ),
            TraceKind::AllocFault { client, attempt } => {
                write!(f, "alloc fault client{client} (attempt {attempt})")
            }
            TraceKind::RetryScheduled { job, client, node, attempt, delay } => {
                if job == u64::MAX {
                    write!(f, "admission retry client{client} (attempt {attempt}, backoff {delay})")
                } else {
                    write!(
                        f,
                        "retry job{job} node{node} (client{client}, attempt {attempt}, \
                         backoff {delay})"
                    )
                }
            }
            TraceKind::BreakerTransition { client, state } => {
                write!(f, "breaker {state} client{client}")
            }
            TraceKind::WatchdogRevoke { job, client, stalled_us } => write!(
                f,
                "watchdog revoke job{job} (client{client}, stalled {stalled_us}us)"
            ),
            TraceKind::DeviceStall { device, until_us } => {
                write!(f, "device stall gpu{device} (until {until_us}us)")
            }
            TraceKind::VersionLoad { model, version, bytes } => {
                write!(f, "version load m{model}@v{version} ({bytes} B)")
            }
            TraceKind::WarmupRun { model, version, run } => {
                write!(f, "warmup run m{model}@v{version} (run {run})")
            }
            TraceKind::Evict { model, version, bytes } => {
                write!(f, "evict m{model}@v{version} ({bytes} B)")
            }
            TraceKind::CanaryPromote { model, version } => {
                write!(f, "canary promote m{model}@v{version}")
            }
            TraceKind::CanaryRollback { model, version } => {
                write!(f, "canary rollback m{model}@v{version}")
            }
            TraceKind::Drain { model, version, inflight } => {
                write!(f, "drain m{model}@v{version} ({inflight} in flight)")
            }
            TraceKind::ControlTransition { from, to } => {
                write!(f, "control transition {from} -> {to}")
            }
            TraceKind::AdmissionShed { client } => {
                write!(f, "admission shed client{client}")
            }
            TraceKind::BatchShrink { client, from, to } => {
                write!(f, "batch shrink client{client} ({from} -> {to})")
            }
            TraceKind::ProfileRebind { client, scale_ppm } => {
                write!(f, "profile rebind client{client} (scale {scale_ppm}ppm)")
            }
            TraceKind::LaxityCancel { job, client, deficit_us } => {
                write!(f, "laxity cancel job{job} (client{client}, deficit {deficit_us}us)")
            }
            TraceKind::ClusterRoute { client, device, cost_us } => {
                write!(f, "cluster route client{client} -> gpu{device} (cost {cost_us}us)")
            }
            TraceKind::ClusterMigrate { model, from, to } => {
                write!(f, "cluster migrate m{model} gpu{from} -> gpu{to}")
            }
            TraceKind::ClusterReconfig { loads, drains } => {
                write!(f, "cluster reconfigure ({loads} loads, {drains} drains)")
            }
        }
    }
}

/// The engine-side recorder: a pre-allocated arena or bounded ring.
///
/// All recording goes through [`record`](TraceBuffer::record), which
/// assigns sequence numbers; when the mode is [`TraceMode::Off`] it is a
/// single branch and no event is ever constructed into the buffer.
#[derive(Debug)]
pub struct TraceBuffer {
    on: bool,
    kernels: bool,
    ring: Option<usize>,
    /// Next slot to overwrite once the ring is full.
    write: usize,
    next_seq: u64,
    dropped: u64,
    events: Vec<TraceEvent>,
}

/// Initial arena capacity when tracing is enabled without a ring bound.
const ARENA_CAPACITY: usize = 1024;

impl TraceBuffer {
    /// Creates a buffer for the given configuration. Allocates nothing when
    /// tracing is off.
    pub fn new(cfg: &TraceConfig) -> TraceBuffer {
        let capacity = match (cfg.mode, cfg.ring_capacity) {
            (TraceMode::Off, _) => 0,
            (_, Some(n)) => n,
            (_, None) => ARENA_CAPACITY,
        };
        TraceBuffer {
            on: cfg.mode != TraceMode::Off,
            kernels: cfg.mode == TraceMode::Full,
            ring: cfg.ring_capacity,
            write: 0,
            next_seq: 0,
            dropped: 0,
            events: Vec::with_capacity(capacity),
        }
    }

    /// Whether any events are recorded. Callers use this to skip building
    /// event payloads (e.g. client lookups) entirely.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Whether per-kernel events are recorded (Full mode). The engine's
    /// kernel hot path checks this single flag.
    #[inline]
    pub fn records_kernels(&self) -> bool {
        self.kernels
    }

    /// Records one event at `at`, assigning the next sequence number.
    /// No-op when tracing is off; kernel events are dropped outside Full
    /// mode so call sites may record unconditionally.
    #[inline]
    pub fn record(&mut self, at: SimTime, kind: TraceKind) {
        if !self.on || (!self.kernels && kind.is_kernel()) {
            return;
        }
        let event = TraceEvent { seq: self.next_seq, at, kind };
        self.next_seq += 1;
        match self.ring {
            Some(cap) if self.events.len() == cap => {
                self.events[self.write] = event;
                self.write = (self.write + 1) % cap;
                self.dropped += 1;
            }
            _ => self.events.push(event),
        }
    }

    /// Events overwritten by the ring so far. Available before
    /// [`finish`](TraceBuffer::finish) so the engine can surface the count
    /// through telemetry while the buffer is still live.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes recording, rotating ring contents into sequence order.
    pub fn finish(mut self) -> Trace {
        if self.write > 0 {
            // The oldest retained event sits at the write cursor.
            self.events.rotate_left(self.write);
        }
        Trace { events: self.events, dropped: self.dropped }
    }
}

/// A finished trace: events in sequence (= time) order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The retained events, ascending `seq`.
    pub events: Vec<TraceEvent>,
    /// Events overwritten by the ring (always the oldest ones).
    pub dropped: u64,
}

impl Trace {
    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events matching a predicate on their kind.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&TraceKind) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| pred(&e.kind))
    }
}

/// Renders a trace as one line per event; `limit` caps the output
/// (`usize::MAX` for everything).
pub fn render_trace(trace: &Trace, limit: usize) -> String {
    let mut out = String::new();
    if trace.dropped > 0 {
        out.push_str(&format!("... ({} events dropped by the ring)\n", trace.dropped));
    }
    for event in trace.events.iter().take(limit) {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    if trace.len() > limit {
        out.push_str(&format!("... ({} more events)\n", trace.len() - limit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(client: u32) -> TraceKind {
        TraceKind::ClientFinished { client }
    }

    #[test]
    fn off_buffer_records_nothing() {
        let mut b = TraceBuffer::new(&TraceConfig::off());
        assert!(!b.is_on());
        b.record(SimTime::ZERO, ev(0));
        let t = b.finish();
        assert!(t.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn sampled_buffer_drops_kernel_events_only() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled());
        assert!(b.is_on());
        assert!(!b.records_kernels());
        b.record(SimTime::ZERO, ev(0));
        b.record(
            SimTime::from_nanos(5),
            TraceKind::KernelEnqueue { job: 0, client: 0, device: 0, node: 0 },
        );
        b.record(SimTime::from_nanos(9), ev(1));
        let t = b.finish();
        assert_eq!(t.len(), 2);
        // Sequence numbers stay dense: the skipped kernel event consumed none.
        assert_eq!(t.events[0].seq, 0);
        assert_eq!(t.events[1].seq, 1);
    }

    #[test]
    fn full_buffer_keeps_kernel_events() {
        let mut b = TraceBuffer::new(&TraceConfig::full());
        assert!(b.records_kernels());
        b.record(
            SimTime::ZERO,
            TraceKind::KernelComplete {
                job: 1,
                client: 0,
                device: 0,
                node: 3,
                gpu: SimDuration::from_micros(7),
            },
        );
        assert_eq!(b.finish().len(), 1);
    }

    #[test]
    fn ring_keeps_newest_in_seq_order() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled().with_ring(3));
        for i in 0..7u32 {
            b.record(SimTime::from_nanos(u64::from(i)), ev(i));
        }
        let t = b.finish();
        assert_eq!(t.dropped, 4);
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "ring capacity")]
    fn zero_ring_rejected() {
        let _ = TraceConfig::full().with_ring(0);
    }

    #[test]
    fn events_render_compactly() {
        let e = TraceEvent {
            seq: 3,
            at: SimTime::from_micros(1500),
            kind: TraceKind::TokenGrant {
                job: 1,
                client: Some(0),
                reason: SwitchReason::QuantumExpired,
            },
        };
        assert_eq!(
            e.to_string(),
            "[0.001500s] token granted to job1 (client0, quantum-expired)"
        );
    }

    #[test]
    fn render_caps_output() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled());
        for i in 0..10u32 {
            b.record(SimTime::from_nanos(u64::from(i)), ev(i));
        }
        let t = b.finish();
        let out = render_trace(&t, 3);
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("7 more events"));
        let full = render_trace(&t, usize::MAX);
        assert_eq!(full.lines().count(), 10);
    }

    #[test]
    fn kind_client_lookup_covers_every_variant() {
        assert_eq!(ev(4).client(), Some(4));
        assert_eq!(
            TraceKind::TokenRevoke {
                job: 1,
                client: None,
                reason: SwitchReason::Deregister
            }
            .client(),
            None
        );
        assert_eq!(
            TraceKind::QuantumEnd { job: 1, client: 9, gpu: SimDuration::ZERO }.client(),
            Some(9)
        );
        assert_eq!(
            TraceKind::DriftAlert {
                client: 2,
                observed_us: 260,
                expected_us: 200,
                deviation_ppm: 300_000
            }
            .client(),
            Some(2)
        );
        assert_eq!(
            TraceKind::SloBurnAlert { slo: 0, short_ppm: 2_000_000, long_ppm: 1_500_000 }
                .client(),
            None
        );
        assert_eq!(
            TraceKind::ControlTransition { from: "healthy", to: "degraded" }.client(),
            None
        );
        assert_eq!(TraceKind::AdmissionShed { client: 7 }.client(), Some(7));
        assert_eq!(TraceKind::BatchShrink { client: 3, from: 4, to: 2 }.client(), Some(3));
        assert_eq!(
            TraceKind::ProfileRebind { client: 5, scale_ppm: 1_400_000 }.client(),
            Some(5)
        );
        assert_eq!(
            TraceKind::LaxityCancel { job: 2, client: 1, deficit_us: 900 }.client(),
            Some(1)
        );
    }

    #[test]
    fn control_events_render_and_remap() {
        let e = TraceEvent {
            seq: 0,
            at: SimTime::from_micros(100),
            kind: TraceKind::LaxityCancel { job: 4, client: 2, deficit_us: 750 },
        };
        assert_eq!(
            e.to_string(),
            "[0.000100s] laxity cancel job4 (client2, deficit 750us)"
        );
        let t = TraceEvent {
            seq: 1,
            at: SimTime::from_micros(101),
            kind: TraceKind::ControlTransition { from: "degraded", to: "shedding" },
        };
        assert_eq!(t.to_string(), "[0.000101s] control transition degraded -> shedding");
        // Remap lifts the group-local ids; the ladder transition carries
        // none and passes through unchanged.
        let mut k = TraceKind::LaxityCancel { job: 4, client: 2, deficit_us: 750 };
        k.remap_ids(&|c| c + 10, &|d| d, &|j| j + 100);
        assert_eq!(k, TraceKind::LaxityCancel { job: 104, client: 12, deficit_us: 750 });
        let mut s = TraceKind::BatchShrink { client: 1, from: 4, to: 2 };
        s.remap_ids(&|c| c + 10, &|d| d, &|j| j);
        assert_eq!(s, TraceKind::BatchShrink { client: 11, from: 4, to: 2 });
    }

    #[test]
    fn cluster_events_render_remap_and_attribute() {
        let r = TraceEvent {
            seq: 0,
            at: SimTime::from_micros(10),
            kind: TraceKind::ClusterRoute { client: 2, device: 1, cost_us: 640 },
        };
        assert_eq!(r.to_string(), "[0.000010s] cluster route client2 -> gpu1 (cost 640us)");
        assert_eq!(r.kind.client(), Some(2));
        let m = TraceEvent {
            seq: 1,
            at: SimTime::from_micros(11),
            kind: TraceKind::ClusterMigrate { model: 3, from: 0, to: 2 },
        };
        assert_eq!(m.to_string(), "[0.000011s] cluster migrate m3 gpu0 -> gpu2");
        assert_eq!(m.kind.client(), None);
        let g = TraceEvent {
            seq: 2,
            at: SimTime::from_micros(12),
            kind: TraceKind::ClusterReconfig { loads: 2, drains: 1 },
        };
        assert_eq!(g.to_string(), "[0.000012s] cluster reconfigure (2 loads, 1 drains)");
        assert_eq!(g.kind.client(), None);
        // Remap lifts client and device ids; the plan summary has none.
        let mut k = TraceKind::ClusterRoute { client: 2, device: 1, cost_us: 640 };
        k.remap_ids(&|c| c + 10, &|d| d + 100, &|j| j);
        assert_eq!(k, TraceKind::ClusterRoute { client: 12, device: 101, cost_us: 640 });
        let mut mg = TraceKind::ClusterMigrate { model: 3, from: 0, to: 2 };
        mg.remap_ids(&|c| c, &|d| d + 100, &|j| j);
        assert_eq!(mg, TraceKind::ClusterMigrate { model: 3, from: 100, to: 102 });
        let mut rc = TraceKind::ClusterReconfig { loads: 2, drains: 1 };
        rc.remap_ids(&|c| c + 1, &|d| d + 1, &|j| j + 1);
        assert_eq!(rc, TraceKind::ClusterReconfig { loads: 2, drains: 1 });
    }

    #[test]
    fn alert_events_render_compactly() {
        let e = TraceEvent {
            seq: 0,
            at: SimTime::from_micros(900),
            kind: TraceKind::DriftAlert {
                client: 1,
                observed_us: 280,
                expected_us: 200,
                deviation_ppm: 400_000,
            },
        };
        assert_eq!(
            e.to_string(),
            "[0.000900s] drift alert client1 (observed 280us vs expected 200us, \
             deviation 400000ppm)"
        );
        let s = TraceEvent {
            seq: 1,
            at: SimTime::from_micros(901),
            kind: TraceKind::SloBurnAlert { slo: 3, short_ppm: 4_000_000, long_ppm: 2_100_000 },
        };
        assert!(s.to_string().contains("slo burn alert objective3"));
    }
}
