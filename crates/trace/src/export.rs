//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Layout: process 1 ("clients") holds one track per client plus a
//! "scheduler" track for token events whose owner is no longer known;
//! process 2 ("gpus") holds one track per device. Quantum spans render as
//! complete (`"ph":"X"`) slices on client tracks, kernel executions as
//! slices on device tracks, and everything else as instant events. The
//! per-kernel enqueue/complete events are deliberately *not* exported —
//! they exist for [`stats`](crate::stats) attribution and would triple the
//! file size without adding a visual.
//!
//! Output is byte-deterministic: events are ordered by
//! `(process, track, timestamp, sequence number)` and all numbers derive
//! from integer nanoseconds.

use crate::{Trace, TraceKind};
use microjson::Value;

/// Track labelling for the exporter: everything the trace's raw ids cannot
/// carry by themselves.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// One label per client, indexed by client id (e.g. `"client 3
    /// (inception-v4)"`). Clients beyond this list get a generic label.
    pub client_labels: Vec<String>,
    /// Number of GPU devices in the run.
    pub device_count: u32,
}

const CLIENTS_PID: u64 = 1;
const GPUS_PID: u64 = 2;

struct Row {
    pid: u64,
    tid: u64,
    ts_ns: u64,
    /// `Some` for complete ("X") slices, `None` for instants.
    dur_ns: Option<u64>,
    name: String,
    cat: &'static str,
    args: Vec<(String, Value)>,
    seq: u64,
}

fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

fn meta_event(pid: u64, tid: Option<u64>, key: &str, name: &str) -> Value {
    let mut fields = vec![
        ("ph".into(), Value::str("M")),
        ("pid".into(), Value::UInt(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Value::UInt(tid)));
    }
    fields.push(("name".into(), Value::str(key)));
    fields.push((
        "args".into(),
        Value::Object(vec![("name".into(), Value::str(name))]),
    ));
    Value::Object(fields)
}

/// Builds the Chrome trace-event document as a [`Value`] tree.
pub fn chrome_trace(trace: &Trace, meta: &TraceMeta) -> Value {
    let scheduler_tid = meta.client_labels.len() as u64;
    let client_tid = |c: Option<u32>| c.map_or(scheduler_tid, u64::from);
    let mut rows: Vec<Row> = Vec::new();
    for e in &trace.events {
        let row = |tid: u64, ts_ns: u64, dur_ns: Option<u64>, name: String, cat, args| Row {
            pid: CLIENTS_PID,
            tid,
            ts_ns,
            dur_ns,
            name,
            cat,
            args,
            seq: e.seq,
        };
        let job_arg = |job: u64| vec![("job".to_string(), Value::UInt(job))];
        match e.kind {
            TraceKind::QuantumEnd { job, client, gpu } => {
                let dur = gpu.as_nanos();
                let start = e.at.as_nanos().saturating_sub(dur);
                rows.push(row(
                    u64::from(client),
                    start,
                    Some(dur),
                    "quantum".into(),
                    "quantum",
                    job_arg(job),
                ));
            }
            TraceKind::KernelLaunch { job, client, device, node, start, end } => {
                rows.push(Row {
                    pid: GPUS_PID,
                    tid: u64::from(device),
                    ts_ns: start.as_nanos(),
                    dur_ns: Some(end.since(start).as_nanos()),
                    name: "kernel".into(),
                    cat: "kernel",
                    args: vec![
                        ("job".into(), Value::UInt(job)),
                        ("client".into(), Value::UInt(u64::from(client))),
                        ("node".into(), Value::UInt(u64::from(node))),
                    ],
                    seq: e.seq,
                });
            }
            TraceKind::KernelEnqueue { .. } | TraceKind::KernelComplete { .. } => {}
            TraceKind::TokenGrant { job, client, reason } => {
                let mut args = job_arg(job);
                args.push(("reason".into(), Value::str(reason.as_str())));
                rows.push(row(client_tid(client), e.at.as_nanos(), None,
                    "token-grant".into(), "token", args));
            }
            TraceKind::TokenRevoke { job, client, reason } => {
                let mut args = job_arg(job);
                args.push(("reason".into(), Value::str(reason.as_str())));
                rows.push(row(client_tid(client), e.at.as_nanos(), None,
                    "token-revoke".into(), "token", args));
            }
            TraceKind::CostThreshold { job, client, cumulated, threshold } => {
                let mut args = job_arg(job);
                args.push(("cumulated".into(), Value::UInt(cumulated)));
                args.push(("threshold".into(), Value::UInt(threshold)));
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "cost-threshold".into(), "quantum", args));
            }
            TraceKind::YieldBlock { job, client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "yield-block".into(), "yield", job_arg(job)));
            }
            TraceKind::YieldUnblock { job, client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "yield-unblock".into(), "yield", job_arg(job)));
            }
            TraceKind::OverflowCharge { job, client, device, gpu } => {
                let mut args = job_arg(job);
                args.push(("device".into(), Value::UInt(u64::from(device))));
                args.push(("gpu_us".into(), us(gpu.as_nanos())));
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "overflow-charge".into(), "overflow", args));
            }
            TraceKind::ClientAdmitted { client, device } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "client-admitted".into(), "lifecycle",
                    vec![("device".into(), Value::UInt(u64::from(device)))]));
            }
            TraceKind::AdmissionQueued { client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "admission-queued".into(), "lifecycle", Vec::new()));
            }
            TraceKind::LifecycleWait { client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "lifecycle-wait".into(), "lifecycle", Vec::new()));
            }
            TraceKind::ClientRejectedOom { client, requested, available } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "client-rejected-oom".into(), "lifecycle",
                    vec![
                        ("requested".into(), Value::UInt(requested)),
                        ("available".into(), Value::UInt(available)),
                    ]));
            }
            TraceKind::ClientFinished { client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "client-finished".into(), "lifecycle", Vec::new()));
            }
            TraceKind::RunRegistered { job, client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "run-registered".into(), "lifecycle", job_arg(job)));
            }
            TraceKind::RunCompleted { job, client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "run-completed".into(), "lifecycle", job_arg(job)));
            }
            TraceKind::DeadlineCancelled { job, client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "deadline-cancelled".into(), "lifecycle", job_arg(job)));
            }
            TraceKind::DriftAlert { client, observed_us, expected_us, deviation_ppm } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "drift-alert".into(), "alert",
                    vec![
                        ("observed_us".into(), Value::UInt(observed_us)),
                        ("expected_us".into(), Value::UInt(expected_us)),
                        ("deviation_ppm".into(), Value::UInt(deviation_ppm)),
                    ]));
            }
            TraceKind::SloBurnAlert { slo, short_ppm, long_ppm } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "slo-burn-alert".into(), "alert",
                    vec![
                        ("slo".into(), Value::UInt(u64::from(slo))),
                        ("short_ppm".into(), Value::UInt(short_ppm)),
                        ("long_ppm".into(), Value::UInt(long_ppm)),
                    ]));
            }
            TraceKind::KernelFault { job, client, device, node, attempt } => {
                let mut args = job_arg(job);
                args.push(("device".into(), Value::UInt(u64::from(device))));
                args.push(("node".into(), Value::UInt(u64::from(node))));
                args.push(("attempt".into(), Value::UInt(u64::from(attempt))));
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "kernel-fault".into(), "fault", args));
            }
            TraceKind::AllocFault { client, attempt } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "alloc-fault".into(), "fault",
                    vec![("attempt".into(), Value::UInt(u64::from(attempt)))]));
            }
            TraceKind::RetryScheduled { job, client, node, attempt, delay } => {
                let mut args = Vec::new();
                if job != u64::MAX {
                    args.push(("job".into(), Value::UInt(job)));
                    args.push(("node".into(), Value::UInt(u64::from(node))));
                }
                args.push(("attempt".into(), Value::UInt(u64::from(attempt))));
                args.push(("backoff_us".into(), us(delay.as_nanos())));
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "retry-scheduled".into(), "recovery", args));
            }
            TraceKind::BreakerTransition { client, state } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    format!("breaker-{state}"), "recovery", Vec::new()));
            }
            TraceKind::WatchdogRevoke { job, client, stalled_us } => {
                let mut args = job_arg(job);
                args.push(("stalled_us".into(), Value::UInt(stalled_us)));
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "watchdog-revoke".into(), "recovery", args));
            }
            TraceKind::DeviceStall { device, until_us } => {
                rows.push(Row {
                    pid: GPUS_PID,
                    tid: u64::from(device),
                    ts_ns: e.at.as_nanos(),
                    dur_ns: None,
                    name: "device-stall".into(),
                    cat: "fault",
                    args: vec![("until_us".into(), Value::UInt(until_us))],
                    seq: e.seq,
                });
            }
            TraceKind::VersionLoad { model, version, bytes } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "version-load".into(), "residency",
                    vec![
                        ("model".into(), Value::UInt(u64::from(model))),
                        ("version".into(), Value::UInt(u64::from(version))),
                        ("bytes".into(), Value::UInt(bytes)),
                    ]));
            }
            TraceKind::WarmupRun { model, version, run } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "warmup-run".into(), "residency",
                    vec![
                        ("model".into(), Value::UInt(u64::from(model))),
                        ("version".into(), Value::UInt(u64::from(version))),
                        ("run".into(), Value::UInt(u64::from(run))),
                    ]));
            }
            TraceKind::Evict { model, version, bytes } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "evict".into(), "residency",
                    vec![
                        ("model".into(), Value::UInt(u64::from(model))),
                        ("version".into(), Value::UInt(u64::from(version))),
                        ("bytes".into(), Value::UInt(bytes)),
                    ]));
            }
            TraceKind::CanaryPromote { model, version } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "canary-promote".into(), "rollout",
                    vec![
                        ("model".into(), Value::UInt(u64::from(model))),
                        ("version".into(), Value::UInt(u64::from(version))),
                    ]));
            }
            TraceKind::CanaryRollback { model, version } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "canary-rollback".into(), "rollout",
                    vec![
                        ("model".into(), Value::UInt(u64::from(model))),
                        ("version".into(), Value::UInt(u64::from(version))),
                    ]));
            }
            TraceKind::Drain { model, version, inflight } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "drain".into(), "residency",
                    vec![
                        ("model".into(), Value::UInt(u64::from(model))),
                        ("version".into(), Value::UInt(u64::from(version))),
                        ("inflight".into(), Value::UInt(u64::from(inflight))),
                    ]));
            }
            TraceKind::ControlTransition { from, to } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    format!("control-{from}-to-{to}"), "control", Vec::new()));
            }
            TraceKind::AdmissionShed { client } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "admission-shed".into(), "control", Vec::new()));
            }
            TraceKind::BatchShrink { client, from, to } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "batch-shrink".into(), "control",
                    vec![
                        ("from".into(), Value::UInt(from)),
                        ("to".into(), Value::UInt(to)),
                    ]));
            }
            TraceKind::ProfileRebind { client, scale_ppm } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "profile-rebind".into(), "control",
                    vec![("scale_ppm".into(), Value::UInt(scale_ppm))]));
            }
            TraceKind::LaxityCancel { job, client, deficit_us } => {
                let mut args = job_arg(job);
                args.push(("deficit_us".into(), Value::UInt(deficit_us)));
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "laxity-cancel".into(), "control", args));
            }
            TraceKind::ClusterRoute { client, device, cost_us } => {
                rows.push(row(u64::from(client), e.at.as_nanos(), None,
                    "cluster-route".into(), "cluster",
                    vec![
                        ("device".into(), Value::UInt(u64::from(device))),
                        ("cost_us".into(), Value::UInt(cost_us)),
                    ]));
            }
            TraceKind::ClusterMigrate { model, from, to } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "cluster-migrate".into(), "cluster",
                    vec![
                        ("model".into(), Value::UInt(u64::from(model))),
                        ("from".into(), Value::UInt(u64::from(from))),
                        ("to".into(), Value::UInt(u64::from(to))),
                    ]));
            }
            TraceKind::ClusterReconfig { loads, drains } => {
                rows.push(row(scheduler_tid, e.at.as_nanos(), None,
                    "cluster-reconfigure".into(), "cluster",
                    vec![
                        ("loads".into(), Value::UInt(u64::from(loads))),
                        ("drains".into(), Value::UInt(u64::from(drains))),
                    ]));
            }
        }
    }

    rows.sort_by_key(|r| (r.pid, r.tid, r.ts_ns, r.seq));

    // Clamp slice starts so each track's slices never overlap: an overflow
    // charge can make a quantum's GPU duration exceed its wall interval,
    // and Perfetto expects same-track slices to nest or abut.
    let mut last: Option<(u64, u64, u64)> = None; // (pid, tid, end_ns)
    for r in rows.iter_mut() {
        let Some(dur) = r.dur_ns else { continue };
        let end = r.ts_ns + dur;
        if let Some((pid, tid, prev_end)) = last {
            if pid == r.pid && tid == r.tid && r.ts_ns < prev_end {
                r.ts_ns = prev_end.min(end);
                r.dur_ns = Some(end - r.ts_ns);
            }
        }
        last = Some((r.pid, r.tid, end.max(r.ts_ns)));
    }

    let mut events: Vec<Value> = Vec::with_capacity(rows.len() + 8);
    events.push(meta_event(CLIENTS_PID, None, "process_name", "clients"));
    events.push(meta_event(GPUS_PID, None, "process_name", "gpus"));
    for (i, label) in meta.client_labels.iter().enumerate() {
        events.push(meta_event(CLIENTS_PID, Some(i as u64), "thread_name", label));
    }
    events.push(meta_event(CLIENTS_PID, Some(scheduler_tid), "thread_name", "scheduler"));
    for d in 0..meta.device_count {
        events.push(meta_event(GPUS_PID, Some(u64::from(d)), "thread_name", &format!("gpu {d}")));
    }

    for r in rows {
        let mut fields = vec![
            ("name".into(), Value::Str(r.name)),
            ("cat".into(), Value::str(r.cat)),
            ("ph".into(), Value::str(if r.dur_ns.is_some() { "X" } else { "i" })),
            ("ts".into(), us(r.ts_ns)),
        ];
        match r.dur_ns {
            Some(d) => fields.push(("dur".into(), us(d))),
            None => fields.push(("s".into(), Value::str("t"))),
        }
        fields.push(("pid".into(), Value::UInt(r.pid)));
        fields.push(("tid".into(), Value::UInt(r.tid)));
        let mut args = r.args;
        args.push(("seq".into(), Value::UInt(r.seq)));
        fields.push(("args".into(), Value::Object(args)));
        events.push(Value::Object(fields));
    }

    let mut other = vec![("dropped_events".into(), Value::UInt(trace.dropped))];
    if trace.dropped > 0 {
        other.push((
            "warning".into(),
            Value::Str(format!(
                "{} events were dropped by the flight-recorder ring; this trace \
                 (and anything attributed from it) is truncated",
                trace.dropped
            )),
        ));
    }
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::str("ms")),
        ("otherData".into(), Value::Object(other)),
    ])
}

/// Serializes [`chrome_trace`] to a compact JSON string (no trailing
/// newline).
pub fn chrome_trace_json(trace: &Trace, meta: &TraceMeta) -> String {
    let mut out = String::new();
    chrome_trace(trace, meta).write(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SwitchReason, TraceBuffer, TraceConfig};
    use simtime::{SimDuration, SimTime};

    fn sample_trace() -> Trace {
        let mut b = TraceBuffer::new(&TraceConfig::full());
        b.record(SimTime::ZERO, TraceKind::ClientAdmitted { client: 0, device: 0 });
        b.record(
            SimTime::from_micros(10),
            TraceKind::TokenGrant { job: 0, client: Some(0), reason: SwitchReason::Register },
        );
        b.record(
            SimTime::from_micros(40),
            TraceKind::KernelLaunch {
                job: 0,
                client: 0,
                device: 0,
                node: 2,
                start: SimTime::from_micros(40),
                end: SimTime::from_micros(55),
            },
        );
        b.record(
            SimTime::from_micros(60),
            TraceKind::QuantumEnd { job: 0, client: 0, gpu: SimDuration::from_micros(15) },
        );
        b.finish()
    }

    fn tracks(doc: &Value) -> Vec<(u64, u64, f64, Option<f64>)> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
            .map(|e| {
                (
                    e.get("pid").unwrap().as_u64().unwrap(),
                    e.get("tid").unwrap().as_u64().unwrap(),
                    e.get("ts").unwrap().as_f64().unwrap(),
                    e.get("dur").and_then(Value::as_f64),
                )
            })
            .collect()
    }

    #[test]
    fn export_is_wellformed_and_parses_back() {
        let meta = TraceMeta { client_labels: vec!["client 0 (m)".into()], device_count: 1 };
        let text = chrome_trace_json(&sample_trace(), &meta);
        let doc = Value::parse(&text).expect("exported JSON parses");
        assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process names + 1 client + 1 scheduler + 1 gpu thread names
        // + 4 payload events, minus the two instants... count the metas:
        let metas = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .count();
        assert_eq!(metas, 5);
        assert_eq!(events.len(), metas + 4);
    }

    #[test]
    fn per_track_timestamps_are_monotonic() {
        let meta = TraceMeta { client_labels: vec!["c0".into()], device_count: 1 };
        let doc = chrome_trace(&sample_trace(), &meta);
        let mut last: std::collections::HashMap<(u64, u64), f64> = Default::default();
        for (pid, tid, ts, dur) in tracks(&doc) {
            let prev = last.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
            assert!(ts >= *prev, "ts regressed on track ({pid},{tid})");
            *prev = ts + dur.unwrap_or(0.0);
        }
    }

    #[test]
    fn overlapping_quanta_are_clamped() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled());
        // Two quanta whose naive spans overlap: [0, 100] and [80, 180].
        b.record(
            SimTime::from_micros(100),
            TraceKind::QuantumEnd { job: 0, client: 0, gpu: SimDuration::from_micros(100) },
        );
        b.record(
            SimTime::from_micros(180),
            TraceKind::QuantumEnd { job: 1, client: 0, gpu: SimDuration::from_micros(100) },
        );
        let meta = TraceMeta { client_labels: vec!["c0".into()], device_count: 0 };
        let doc = chrome_trace(&b.finish(), &meta);
        let spans: Vec<_> = tracks(&doc).into_iter().filter(|t| t.3.is_some()).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].2, 100.0, "second span clamped to first's end");
        assert_eq!(spans[1].3, Some(80.0));
    }

    #[test]
    fn unknown_client_token_events_land_on_scheduler_track() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled());
        b.record(
            SimTime::from_micros(5),
            TraceKind::TokenRevoke { job: 7, client: None, reason: SwitchReason::Deregister },
        );
        let meta = TraceMeta { client_labels: vec!["c0".into(), "c1".into()], device_count: 0 };
        let doc = chrome_trace(&b.finish(), &meta);
        let rows = tracks(&doc);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, 2, "scheduler tid = client count");
    }

    #[test]
    fn alert_events_land_on_the_timeline() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled());
        b.record(
            SimTime::from_micros(500),
            TraceKind::DriftAlert {
                client: 0,
                observed_us: 280,
                expected_us: 200,
                deviation_ppm: 400_000,
            },
        );
        b.record(
            SimTime::from_micros(600),
            TraceKind::SloBurnAlert { slo: 0, short_ppm: 2_500_000, long_ppm: 2_000_000 },
        );
        let meta = TraceMeta { client_labels: vec!["c0".into()], device_count: 0 };
        let text = chrome_trace_json(&b.finish(), &meta);
        assert!(text.contains("\"drift-alert\""));
        assert!(text.contains("\"slo-burn-alert\""));
        let doc = Value::parse(&text).unwrap();
        let rows = tracks(&doc);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, 0, "drift alert on the client track");
        assert_eq!(rows[1].1, 1, "slo alert on the scheduler track");
    }

    #[test]
    fn ring_drops_produce_a_warning() {
        let mut b = TraceBuffer::new(&TraceConfig::sampled().with_ring(1));
        for i in 0..3u32 {
            b.record(SimTime::from_micros(u64::from(i)), TraceKind::ClientFinished { client: i });
        }
        let meta = TraceMeta { client_labels: vec!["c0".into()], device_count: 0 };
        let doc = chrome_trace(&b.finish(), &meta);
        let other = doc.get("otherData").unwrap();
        assert_eq!(other.get("dropped_events").unwrap().as_u64(), Some(2));
        let warning = other.get("warning").unwrap().as_str().unwrap();
        assert!(warning.contains("2 events were dropped"));
        // A clean trace carries no warning key at all.
        let clean = chrome_trace(&sample_trace(), &meta);
        assert!(clean.get("otherData").unwrap().get("warning").is_none());
    }

    #[test]
    fn export_is_byte_stable() {
        let meta = TraceMeta { client_labels: vec!["c0".into()], device_count: 1 };
        let a = chrome_trace_json(&sample_trace(), &meta);
        let b = chrome_trace_json(&sample_trace(), &meta);
        assert_eq!(a, b);
    }
}
