#![deny(missing_docs)]

//! Deterministic parallelism for the experiment harness.
//!
//! The paper's evaluation replays millions of discrete events across dozens
//! of independent experiments, replications and parameter sweeps — an
//! embarrassingly parallel shape. This crate provides the one primitive the
//! harness needs: [`par_map`], an *ordered* parallel map whose output is
//! byte-identical to the serial `items.map(f).collect()` no matter how many
//! worker threads run it.
//!
//! # The determinism rule
//!
//! Parallel results may never depend on scheduling. Two obligations follow:
//!
//! 1. **Fork-per-item randomness.** Each item must derive its randomness
//!    from its own key (its index, seed or parameters) — e.g. by forking a
//!    fresh `DetRng` per replication — never from shared mutable state.
//! 2. **Key-ordered merge.** Results are written into a slot indexed by the
//!    item's position and only merged (reduced, concatenated, printed) in
//!    that order on the calling thread.
//!
//! [`par_map`] enforces the second rule structurally; the first is a
//! contract on the closure (upheld throughout this repo — simulation runs
//! take an explicit seed and share nothing mutable).
//!
//! ```
//! let squares = simpar::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable capping the worker pool, mirrored by the harness
/// binaries' `--jobs` flag.
pub const JOBS_ENV: &str = "OLYMPIAN_JOBS";

/// The worker count [`par_map`] uses: the `OLYMPIAN_JOBS` environment
/// variable when set to a positive integer, otherwise all available cores.
pub fn max_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    default_jobs()
}

/// The hardware parallelism fallback (all available cores, at least 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to [`max_jobs`] threads, returning results
/// in item order. Equivalent to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` — including
/// byte-identical output when `f` follows the fork-per-item rule — but with
/// wall-clock close to the longest single item at sufficient parallelism.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after all workers stop).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_jobs(max_jobs(), items, f)
}

/// [`par_map`] with an explicit worker cap (for `--jobs N` plumbing and for
/// the serial-vs-parallel determinism tests, which compare `jobs = 1`
/// against `jobs = N`).
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after all workers stop).
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Hand out one slot (a disjoint &mut) per item via a mutexed iterator of
    // raw parts; items are claimed with an atomic cursor so finished workers
    // steal remaining work instead of idling behind a static partition.
    let slot_ptrs: Vec<SlotPtr<R>> = slots
        .iter_mut()
        .map(|s| SlotPtr(s as *mut Option<R>))
        .collect();
    let cursor = AtomicUsize::new(0);
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let cursor = &cursor;
            let slot_ptrs = &slot_ptrs;
            let panic_box = &panic_box;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, &items[i])))
                {
                    // SAFETY: each index is claimed exactly once (the atomic
                    // cursor never repeats a value below items.len()), so no
                    // two threads write the same slot, and the scope
                    // guarantees the writes finish before `slots` is read.
                    Ok(r) => {
                        let slot = slot_ptrs[i].0;
                        unsafe { *slot = Some(r) }
                    }
                    Err(p) => {
                        panic_box.lock().unwrap().get_or_insert(p);
                        // Stop claiming further work.
                        cursor.store(items.len(), Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    if let Some(p) = panic_box.into_inner().unwrap() {
        std::panic::resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot written"))
        .collect()
}

/// A raw slot pointer that may cross threads; safety argument at the single
/// write site.
struct SlotPtr<R>(*mut Option<R>);
unsafe impl<R: Send> Send for SlotPtr<R> {}
unsafe impl<R: Send> Sync for SlotPtr<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |_: usize, &x: &u64| format!("{:x}", x.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(par_map_jobs(1, &items, f), par_map_jobs(8, &items, f));
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn more_items_than_workers() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map_jobs(3, &items, |i, _| i);
        assert_eq!(out, items);
    }

    #[test]
    fn jobs_env_parsing() {
        // Only exercise the pure fallback here; the env var itself is
        // process-global and covered by the harness integration test.
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_jobs(4, &items, |_, &x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
