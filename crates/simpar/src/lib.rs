#![deny(missing_docs)]

//! Deterministic parallelism for the experiment harness.
//!
//! The paper's evaluation replays millions of discrete events across dozens
//! of independent experiments, replications and parameter sweeps — an
//! embarrassingly parallel shape. This crate provides the one primitive the
//! harness needs: [`par_map`], an *ordered* parallel map whose output is
//! byte-identical to the serial `items.map(f).collect()` no matter how many
//! worker threads run it.
//!
//! # The determinism rule
//!
//! Parallel results may never depend on scheduling. Two obligations follow:
//!
//! 1. **Fork-per-item randomness.** Each item must derive its randomness
//!    from its own key (its index, seed or parameters) — e.g. by forking a
//!    fresh `DetRng` per replication — never from shared mutable state.
//! 2. **Key-ordered merge.** Results are written into a slot indexed by the
//!    item's position and only merged (reduced, concatenated, printed) in
//!    that order on the calling thread.
//!
//! [`par_map`] enforces the second rule structurally; the first is a
//! contract on the closure (upheld throughout this repo — simulation runs
//! take an explicit seed and share nothing mutable).
//!
//! ```
//! let squares = simpar::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Environment variable capping the worker pool, mirrored by the harness
/// binaries' `--jobs` flag.
pub const JOBS_ENV: &str = "OLYMPIAN_JOBS";

/// The worker count [`par_map`] uses: the `OLYMPIAN_JOBS` environment
/// variable when set to a positive integer, otherwise all available cores.
pub fn max_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    default_jobs()
}

/// The hardware parallelism fallback (all available cores, at least 1).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to [`max_jobs`] threads, returning results
/// in item order. Equivalent to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` — including
/// byte-identical output when `f` follows the fork-per-item rule — but with
/// wall-clock close to the longest single item at sufficient parallelism.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after all workers stop).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_jobs(max_jobs(), items, f)
}

/// [`par_map`] with an explicit worker cap (for `--jobs N` plumbing and for
/// the serial-vs-parallel determinism tests, which compare `jobs = 1`
/// against `jobs = N`).
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after all workers stop).
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    // Hand out one slot (a disjoint &mut) per item via a mutexed iterator of
    // raw parts; items are claimed with an atomic cursor so finished workers
    // steal remaining work instead of idling behind a static partition.
    let slot_ptrs: Vec<SlotPtr<R>> = slots
        .iter_mut()
        .map(|s| SlotPtr(s as *mut Option<R>))
        .collect();
    let cursor = AtomicUsize::new(0);
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let cursor = &cursor;
            let slot_ptrs = &slot_ptrs;
            let panic_box = &panic_box;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, &items[i])))
                {
                    // SAFETY: each index is claimed exactly once (the atomic
                    // cursor never repeats a value below items.len()), so no
                    // two threads write the same slot, and the scope
                    // guarantees the writes finish before `slots` is read.
                    Ok(r) => {
                        let slot = slot_ptrs[i].0;
                        unsafe { *slot = Some(r) }
                    }
                    Err(p) => {
                        panic_box.lock().unwrap().get_or_insert(p);
                        // Stop claiming further work.
                        cursor.store(items.len(), Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    if let Some(p) = panic_box.into_inner().unwrap() {
        std::panic::resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot written"))
        .collect()
}

/// A raw slot pointer that may cross threads; safety argument at the single
/// write site.
struct SlotPtr<R>(*mut Option<R>);
unsafe impl<R: Send> Send for SlotPtr<R> {}
unsafe impl<R: Send> Sync for SlotPtr<R> {}

/// Runs `f` on every item of a mutable slice, in place, on up to `jobs`
/// threads. The in-place sibling of [`par_map_jobs`], built for the sharded
/// engine's window loop: each device-group engine advances one lookahead
/// window concurrently, and the call returning is the window barrier.
///
/// The determinism rule applies unchanged: `f(i, item)` must depend only on
/// the item (and index), never on sibling items or scheduling order — then
/// the slice ends in the same state for every `jobs` value.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (after all workers stop).
pub fn par_for_each_mut<T, F>(jobs: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }

    let n = items.len();
    // One disjoint &mut per item, claimed by an atomic cursor exactly as in
    // `par_map_jobs`; the scope joins all workers before `items` is touched
    // again by the caller.
    let item_ptrs: Vec<ItemPtr<T>> = items.iter_mut().map(|x| ItemPtr(x as *mut T)).collect();
    let cursor = AtomicUsize::new(0);
    let panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let cursor = &cursor;
            let item_ptrs = &item_ptrs;
            let panic_box = &panic_box;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                // SAFETY: each index is claimed exactly once (the cursor
                // never repeats a value below n), so no two threads hold the
                // same &mut, and the scope outlives every borrow.
                let ptr = item_ptrs[i].0;
                let item = unsafe { &mut *ptr };
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item))) {
                    Ok(()) => {}
                    Err(p) => {
                        panic_box.lock().unwrap().get_or_insert(p);
                        cursor.store(n, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });

    if let Some(p) = panic_box.into_inner().unwrap() {
        std::panic::resume_unwind(p);
    }
}

/// A raw item pointer that may cross threads; safety argument at the single
/// deref site in [`par_for_each_mut`].
struct ItemPtr<T>(*mut T);
unsafe impl<T: Send> Send for ItemPtr<T> {}
unsafe impl<T: Send> Sync for ItemPtr<T> {}

/// The type-erased per-item job a [`Pool`] dispatch runs; the raw pointer
/// erases the caller's stack lifetime — see the SAFETY notes in
/// [`Pool::for_each_mut`].
type RawJob = *const (dyn Fn(usize) + Sync);

/// State shared between a pool's resident workers and dispatching calls.
/// All `UnsafeCell` fields are written only by the dispatching thread
/// *before* the start barrier and read by workers *after* it (and the
/// reverse around the end barrier), so the barriers provide the
/// happens-before edges and no field needs atomicity beyond `cursor`.
struct PoolShared {
    start: Barrier,
    end: Barrier,
    job: UnsafeCell<Option<RawJob>>,
    items: UnsafeCell<usize>,
    shutdown: UnsafeCell<bool>,
    cursor: AtomicUsize,
    panic_box: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: the barrier protocol above serializes all UnsafeCell access.
unsafe impl Sync for PoolShared {}

impl PoolShared {
    fn new(participants: usize) -> Self {
        PoolShared {
            start: Barrier::new(participants),
            end: Barrier::new(participants),
            job: UnsafeCell::new(None),
            items: UnsafeCell::new(0),
            shutdown: UnsafeCell::new(false),
            cursor: AtomicUsize::new(0),
            panic_box: Mutex::new(None),
        }
    }

    /// Claims and runs items until the cursor is exhausted; first panic is
    /// boxed and stops further claims.
    fn work(&self, job: &(dyn Fn(usize) + Sync), n: usize) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i))) {
                self.panic_box.lock().unwrap().get_or_insert(p);
                self.cursor.store(n, Ordering::Relaxed);
                return;
            }
        }
    }

    fn worker(&self) {
        loop {
            self.start.wait();
            // SAFETY: written by the dispatcher before the start barrier.
            if unsafe { *self.shutdown.get() } {
                return;
            }
            let (job, n) = unsafe { ((*self.job.get()).expect("job set"), *self.items.get()) };
            // SAFETY: the dispatcher keeps the closure alive until the end
            // barrier, which this thread reaches before looping.
            self.work(unsafe { &*job }, n);
            self.end.wait();
        }
    }
}

/// A persistent worker pool for repeated small parallel regions — the
/// sharded engine's window loop runs thousands of sub-millisecond windows,
/// and spawning OS threads per window ([`par_for_each_mut`]) costs more
/// than the windows themselves. Workers are spawned once by [`with_pool`]
/// and parked on a barrier between dispatches.
///
/// The determinism rule is unchanged from [`par_for_each_mut`]: the result
/// must not depend on which worker runs which item.
pub struct Pool<'p> {
    shared: Option<&'p PoolShared>,
}

impl Pool<'_> {
    /// Runs `f` on every item in place, using the resident workers plus the
    /// calling thread. Serial when the pool has no workers (built with
    /// `threads <= 1`) or there is at most one item.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` (after the dispatch ends).
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = items.len();
        let Some(shared) = self.shared.filter(|_| n > 1) else {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        };
        let item_ptrs: Vec<ItemPtr<T>> = items.iter_mut().map(|x| ItemPtr(x as *mut T)).collect();
        let call = |i: usize| {
            // SAFETY: each index is claimed exactly once across all
            // participants (one shared atomic cursor), so no two threads
            // hold the same &mut, and the dispatch ends before `items` is
            // touched again by the caller.
            let ptr = item_ptrs[i].0;
            let item = unsafe { &mut *ptr };
            f(i, item);
        };
        let job: &(dyn Fn(usize) + Sync) = &call;
        // SAFETY: erases `job`'s stack lifetime. The pointer is only
        // dereferenced by workers between the start and end barriers below,
        // and `call` outlives both waits.
        let raw: RawJob = unsafe { std::mem::transmute(job) };
        unsafe {
            *shared.job.get() = Some(raw);
            *shared.items.get() = n;
        }
        shared.cursor.store(0, Ordering::Relaxed);
        shared.start.wait();
        shared.work(job, n);
        shared.end.wait();
        // Bind before unwinding so the guard drops first (an unwind while
        // the lock is held would poison it for the next dispatch).
        let panic = shared.panic_box.lock().unwrap().take();
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }
}

/// Runs `body` with a [`Pool`] of `threads` total participants (the calling
/// thread plus `threads - 1` resident workers), joining the workers on the
/// way out — including when `body` panics.
pub fn with_pool<R>(threads: usize, body: impl FnOnce(&Pool<'_>) -> R) -> R {
    let workers = threads.max(1) - 1;
    if workers == 0 {
        return body(&Pool { shared: None });
    }
    let shared = PoolShared::new(workers + 1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| shared.worker());
        }
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&Pool { shared: Some(&shared) })
        }));
        // SAFETY: workers are parked at the start barrier; the flag is
        // published to them by the barrier wait.
        unsafe { *shared.shutdown.get() = true };
        shared.start.wait();
        match out {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..257).collect();
        let f = |_: usize, &x: &u64| format!("{:x}", x.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(par_map_jobs(1, &items, f), par_map_jobs(8, &items, f));
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn more_items_than_workers() {
        let items: Vec<usize> = (0..97).collect();
        let out = par_map_jobs(3, &items, |i, _| i);
        assert_eq!(out, items);
    }

    #[test]
    fn jobs_env_parsing() {
        // Only exercise the pure fallback here; the env var itself is
        // process-global and covered by the harness integration test.
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn for_each_mut_matches_serial() {
        let mut serial: Vec<u64> = (0..257).collect();
        let mut parallel = serial.clone();
        let f = |i: usize, x: &mut u64| *x = x.wrapping_mul(31).wrapping_add(i as u64);
        par_for_each_mut(1, &mut serial, f);
        par_for_each_mut(8, &mut parallel, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn for_each_mut_propagates_panics() {
        let mut items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_for_each_mut(4, &mut items, |_, x| {
                if *x == 13 {
                    panic!("boom");
                }
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pool_matches_serial_over_many_dispatches() {
        let mut serial: Vec<u64> = (0..97).collect();
        let mut pooled = serial.clone();
        let f = |i: usize, x: &mut u64| *x = x.wrapping_mul(6364136223846793005).rotate_left(i as u32);
        for _ in 0..100 {
            par_for_each_mut(1, &mut serial, f);
        }
        with_pool(4, |pool| {
            for _ in 0..100 {
                pool.for_each_mut(&mut pooled, f);
            }
        });
        assert_eq!(serial, pooled);
    }

    #[test]
    fn pool_serial_fallback_and_small_inputs() {
        with_pool(1, |pool| {
            let mut one = vec![7u32];
            pool.for_each_mut(&mut one, |_, x| *x += 1);
            assert_eq!(one, vec![8]);
            let mut empty: Vec<u32> = Vec::new();
            pool.for_each_mut(&mut empty, |_, _| unreachable!());
        });
    }

    #[test]
    fn pool_propagates_job_panics_and_survives() {
        with_pool(4, |pool| {
            let mut items: Vec<u32> = (0..64).collect();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.for_each_mut(&mut items, |_, x| {
                    if *x == 13 {
                        panic!("boom");
                    }
                })
            }));
            assert!(r.is_err());
            // The pool stays usable after a dispatch panicked.
            pool.for_each_mut(&mut items, |_, x| *x = 0);
            assert!(items.iter().all(|&x| x == 0));
        });
    }

    #[test]
    fn pool_unwinds_body_panics() {
        let r = std::panic::catch_unwind(|| {
            with_pool(3, |_pool| panic!("body"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_jobs(4, &items, |_, &x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
