//! Integration tests for queued admission and run deadlines.

use gpusim::DeviceProfile;
use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientOutcome, ClientSpec, EngineConfig, FifoScheduler};
use simtime::SimDuration;
use std::sync::Arc;

fn tiny_device(bytes: u64) -> DeviceProfile {
    DeviceProfile::custom("tiny", 1.0, bytes, 4, 0.0)
}

#[test]
fn queued_admission_lets_everyone_finish_sequentially() {
    let model = models::mini::small(4);
    // Memory for the weights plus ONE client's activations.
    let cfg = EngineConfig {
        device: tiny_device(model.weights_bytes() + model.activation_bytes() + 1024),
        queue_admission: true,
        ..EngineConfig::default()
    };
    let report = run_experiment(
        &cfg,
        vec![ClientSpec::new(model.clone(), 2); 4],
        &mut FifoScheduler::new(),
    );
    assert!(report.all_finished(), "outcomes: {:?}",
        report.clients.iter().map(|c| &c.outcome).collect::<Vec<_>>());
    // Peak memory never exceeded one client's footprint.
    assert!(report.peak_memory <= model.weights_bytes() + model.activation_bytes() + 1024);
    // Admissions were serialized: finish times strictly ordered.
    let f = report.finish_times_secs();
    let mut sorted = f.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    assert_eq!(f.len(), 4);
    assert!(sorted.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn reject_admission_remains_the_default() {
    let model = models::mini::small(4);
    let cfg = EngineConfig {
        device: tiny_device(model.weights_bytes() + model.activation_bytes() + 1024),
        ..EngineConfig::default()
    };
    let report = run_experiment(
        &cfg,
        vec![ClientSpec::new(model, 2); 3],
        &mut FifoScheduler::new(),
    );
    assert_eq!(report.finished_count(), 1);
    assert!(report
        .clients
        .iter()
        .skip(1)
        .all(|c| matches!(c.outcome, ClientOutcome::RejectedOom { .. })));
}

#[test]
fn activations_are_released_at_session_end() {
    let model = models::mini::small(4);
    let cfg = EngineConfig::default();
    // Two clients, staggered so the second starts after the first finished.
    let clients = vec![
        ClientSpec::new(model.clone(), 1),
        ClientSpec::new(model.clone(), 1).with_start(simtime::SimTime::from_millis(1_000)),
    ];
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    assert!(report.all_finished());
    // Never both resident: peak covers only one client's activations.
    assert_eq!(
        report.peak_memory,
        model.weights_bytes() + model.activation_bytes()
    );
}

#[test]
fn impossible_deadline_cancels_the_session() {
    let model = models::mini::small(4); // ~1.6 ms of GPU work per run
    let cfg = EngineConfig::default();
    let clients = vec![
        ClientSpec::new(model.clone(), 3).with_run_deadline(SimDuration::from_micros(100)),
        ClientSpec::new(model, 3),
    ];
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    match report.clients[0].outcome {
        ClientOutcome::DeadlineExceeded(at) => {
            // Cancelled right at the deadline of the first run.
            let t = at.as_nanos() as f64 / 1e3;
            assert!((t - 100.0).abs() < 1.0, "cancelled at {t} us");
        }
        ref other => panic!("expected deadline, got {other:?}"),
    }
    // The other client is unaffected.
    assert!(report.clients[1].is_finished());
}

#[test]
fn generous_deadline_never_fires() {
    let model = models::mini::small(4);
    let cfg = EngineConfig::default();
    let clients =
        vec![ClientSpec::new(model, 3).with_run_deadline(SimDuration::from_secs(5)); 2];
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    assert!(report.all_finished());
}

#[test]
fn deadline_cancellation_under_olympian_releases_the_token() {
    let model = models::mini::small(4);
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    let mut store = ProfileStore::new();
    store.insert(profiler.profile(&model));
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    let clients = vec![
        // The doomed client would hold the token when its deadline fires.
        ClientSpec::new(model.clone(), 5).with_run_deadline(SimDuration::from_micros(300)),
        ClientSpec::new(model, 2),
    ];
    let report = run_experiment(&cfg, clients, &mut sched);
    assert!(matches!(
        report.clients[0].outcome,
        ClientOutcome::DeadlineExceeded(_)
    ));
    assert!(
        report.clients[1].is_finished(),
        "the token must pass on after cancellation: {:?}",
        report.clients[1].outcome
    );
}

#[test]
fn deadline_frees_memory_for_queued_clients() {
    let model = models::mini::small(4);
    let cfg = EngineConfig {
        device: tiny_device(model.weights_bytes() + model.activation_bytes() + 1024),
        queue_admission: true,
        ..EngineConfig::default()
    };
    let clients = vec![
        // Hogs the device, then gets cancelled.
        ClientSpec::new(model.clone(), 100).with_run_deadline(SimDuration::from_micros(500)),
        // Waits in the admission queue until the hog is evicted.
        ClientSpec::new(model, 1),
    ];
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    assert!(matches!(
        report.clients[0].outcome,
        ClientOutcome::DeadlineExceeded(_)
    ));
    assert!(report.clients[1].is_finished());
}

#[test]
fn admission_is_first_fit_with_fifo_retry_among_waiters() {
    // Semantics under queued admission: a newly arriving client that *fits*
    // is admitted immediately (first-fit); clients that do not fit wait and
    // are retried in FIFO order as memory frees.
    let big = models::mini::small(64); // 64 * 64KiB of activations
    let small = models::mini::tiny(1);
    let cfg = EngineConfig {
        device: tiny_device(
            big.weights_bytes()
                + small.weights_bytes()
                + big.activation_bytes()
                + small.activation_bytes(),
        ),
        queue_admission: true,
        ..EngineConfig::default()
    };
    let clients = vec![
        ClientSpec::new(big.clone(), 2), // admitted, occupies the device
        ClientSpec::new(big, 1),         // waits (no room for a 2nd big)
        ClientSpec::new(small, 1),       // fits → admitted immediately
    ];
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    assert!(report.all_finished());
    let f = report.finish_times_secs();
    // The small bystander was not blocked by the big waiter...
    assert!(f[2] < f[1], "first-fit bypass expected: {f:?}");
    // ...and the big waiter only ran after the first big client finished.
    assert!(f[1] > f[0], "waiter admitted after a finisher: {f:?}");
}

#[test]
fn empty_arrival_trace_plans_no_batches() {
    use serving::batching::{plan_batches, BatchingConfig};
    let plan = plan_batches(&[], &BatchingConfig::new(8, SimDuration::from_millis(1)));
    assert!(plan.is_empty());
}
