//! End-to-end checks of the model-lifecycle manager: byte-determinism of
//! every export across worker counts, memory-budgeted eviction churn that
//! never exceeds the device, and canary rollouts that promote a healthy
//! version 2 and roll back a regressed one.

use lifecycle::{CanaryConfig, DeploymentPlan, LifecycleConfig, ModelDeployment};
use olympian::{OlympianScheduler, ProfileStore, StoreBinder};
use serving::{
    run_experiment, ClientOutcome, ClientSpec, EngineConfig, RunReport, TraceConfig,
};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;
use telemetry::TelemetryConfig;

const QUANTUM: SimDuration = SimDuration::from_micros(200);
const CADENCE: SimDuration = SimDuration::from_micros(500);
const CANARY: CanaryConfig = CanaryConfig { stride: 3, min_runs: 4, tolerance: 0.25 };

/// Rebadges a mini zoo model as the named service; `regressed` picks a
/// much heavier graph (the unhealthy canary candidate).
fn service(name: &str, regressed: bool) -> models::LoadedModel {
    let m = if regressed { models::mini::small(4) } else { models::mini::tiny(4) };
    models::LoadedModel::from_parts(
        name,
        None,
        m.batch(),
        Arc::clone(m.graph()),
        m.weights_bytes(),
        m.activation_bytes(),
    )
}

/// Engine + empty store wired to a calibrated per-version binder; jobs of
/// managed models register under `"{name}@v{n}"` and resolve against the
/// store's dynamic section.
fn lifecycle_cfg(mut cfg: EngineConfig, plan: DeploymentPlan) -> (EngineConfig, Arc<ProfileStore>) {
    cfg = cfg
        .with_trace(TraceConfig::sampled())
        .with_telemetry(TelemetryConfig::enabled(CADENCE));
    let store = Arc::new(ProfileStore::new());
    let binder = StoreBinder::calibrate(&cfg, &plan, Arc::clone(&store));
    let lc = LifecycleConfig::new(plan).with_canary(CANARY).with_binder(binder);
    (cfg.with_lifecycle(lc), store)
}

fn fair(store: Arc<ProfileStore>) -> OlympianScheduler {
    OlympianScheduler::new(store, Box::new(olympian::RoundRobin::new()), QUANTUM)
}

/// Six single-version services on a device whose memory fits three weight
/// sets: residency churns through cost-aware eviction.
fn churn_run() -> RunReport {
    const SERVICES: usize = 6;
    let probe = service("probe", false);
    let budget =
        3 * probe.weights_bytes() + SERVICES as u64 * probe.activation_bytes() + (64 << 10);
    let mut plan = DeploymentPlan::new();
    for i in 0..SERVICES {
        let name = format!("svc-{i}");
        plan = plan.with_model(ModelDeployment::new(name.clone(), service(&name, false)));
    }
    let cfg = EngineConfig {
        device: gpusim::DeviceProfile::custom("lifecycle-lab", 1.0, budget, 8, 0.0),
        ..EngineConfig::default()
    };
    let (cfg, store) = lifecycle_cfg(cfg, plan);
    let clients: Vec<ClientSpec> = (0..SERVICES)
        .map(|i| {
            ClientSpec::new(service(&format!("svc-{i}"), false), 4)
                .with_start(SimTime::ZERO + SimDuration::from_micros(150 * i as u64))
                .with_think_time(SimDuration::from_micros(800))
        })
        .collect();
    run_experiment(&cfg, clients, &mut fair(store))
}

/// One deployment publishing version 2 mid-run; the candidate is either a
/// twin of version 1 (healthy) or a far heavier graph (regressed).
fn canary_run(regressed: bool) -> RunReport {
    let plan = DeploymentPlan::new().with_model(
        ModelDeployment::new("svc", service("svc", false))
            .with_version(service("svc", regressed), SimTime::from_micros(500)),
    );
    let (cfg, store) = lifecycle_cfg(EngineConfig::default(), plan);
    let clients = vec![ClientSpec::new(service("svc", false), 16); 3];
    run_experiment(&cfg, clients, &mut fair(store))
}

fn no_stalls(r: &RunReport) {
    for c in &r.clients {
        assert!(
            !matches!(c.outcome, ClientOutcome::Stalled),
            "client {} wedged: {:?}",
            c.client.0,
            c.outcome
        );
    }
}

#[test]
fn lifecycle_exports_are_byte_identical_across_job_counts() {
    std::env::remove_var(simpar::JOBS_ENV);
    let serial_churn = churn_run();
    let serial_canary = canary_run(true);

    std::env::set_var(simpar::JOBS_ENV, "2");
    let parallel_churn = churn_run();
    let parallel_canary = canary_run(true);
    std::env::remove_var(simpar::JOBS_ENV);

    for (label, a, b) in [
        ("churn", &serial_churn, &parallel_churn),
        ("canary", &serial_canary, &parallel_canary),
    ] {
        assert_eq!(a.makespan, b.makespan, "{label} makespan");
        assert_eq!(
            a.telemetry_jsonl(),
            b.telemetry_jsonl(),
            "{label}: JSON-lines export must not depend on the worker count"
        );
        assert_eq!(
            a.prometheus_text(),
            b.prometheus_text(),
            "{label}: Prometheus export must not depend on the worker count"
        );
        assert_eq!(
            a.chrome_trace_json(),
            b.chrome_trace_json(),
            "{label}: Perfetto export must not depend on the worker count"
        );
    }
}

#[test]
fn churn_evicts_reloads_and_stays_under_budget() {
    let r = churn_run();
    assert!(r.all_finished(), "every churn client must finish");
    no_stalls(&r);
    let t = &r.telemetry;
    assert!(t.counter("versions_evicted").unwrap() >= 1, "eviction must fire");
    assert!(
        t.counter("versions_loaded").unwrap() > 6,
        "evicted services must reload on demand"
    );
    let probe = service("probe", false);
    let budget = 3 * probe.weights_bytes() + 6 * probe.activation_bytes() + (64 << 10);
    assert!(r.peak_memory <= budget, "peak {} over budget {budget}", r.peak_memory);
}

#[test]
fn canary_promotes_healthy_and_rolls_back_regressed() {
    let healthy = canary_run(false);
    assert!(healthy.all_finished());
    no_stalls(&healthy);
    assert_eq!(healthy.telemetry.counter("canary_promotions"), Some(1));
    assert_eq!(healthy.telemetry.counter("canary_rollbacks"), Some(0));

    let regressed = canary_run(true);
    assert!(regressed.all_finished(), "draining must finish in-flight runs");
    no_stalls(&regressed);
    assert_eq!(regressed.telemetry.counter("canary_promotions"), Some(0));
    assert_eq!(regressed.telemetry.counter("canary_rollbacks"), Some(1));
    // The rolled-back candidate drains and unloads; the incumbent keeps
    // serving, so at least one drain and one unload are observed.
    assert!(regressed.telemetry.counter("drains_started").unwrap() >= 1);
    assert!(regressed.telemetry.counter("versions_unloaded").unwrap() >= 1);
}
