//! End-to-end checks of the telemetry layer: byte-determinism of the
//! JSON-lines and Prometheus exports across worker counts, and the full
//! alert path of a drifting deployment — report, JSON-lines stream and
//! Perfetto timeline.

use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientSpec, EngineConfig, RunReport, TraceConfig};
use simtime::SimDuration;
use std::sync::Arc;
use telemetry::{BurnWindows, DriftConfig, SloSpec, TelemetryConfig};

const QUANTUM: SimDuration = SimDuration::from_micros(200);
const INTERVAL: SimDuration = SimDuration::from_micros(100);

/// Builds the profile store through `simpar::par_map` — the code path
/// `--jobs N` parallelizes — so the determinism test actually covers the
/// parallel harness.
fn store_for(cfg: &EngineConfig) -> Arc<ProfileStore> {
    let models = [models::mini::small(4), models::mini::branchy(2)];
    let profiles = simpar::par_map(&models, |_, m| Profiler::new(cfg).profile(m));
    let mut store = ProfileStore::new();
    for p in profiles {
        store.insert(p);
    }
    Arc::new(store)
}

fn clients() -> Vec<ClientSpec> {
    vec![
        ClientSpec::new(models::mini::small(4), 8),
        ClientSpec::new(models::mini::small(4), 8),
        ClientSpec::new(models::mini::branchy(2), 8),
    ]
}

/// A deployment whose device regressed 40% after profiling, with telemetry
/// and sampled tracing on: the profiles (and the latency objective,
/// calibrated on the fresh device by a probe run) are stale, so both the
/// streaming drift detector and the SLO burn-rate monitor fire mid-run.
fn drifted_run() -> RunReport {
    let fresh = EngineConfig::default();
    let store = store_for(&fresh);

    let probe_cfg = fresh.with_telemetry(TelemetryConfig::enabled(INTERVAL));
    let mut probe_sched =
        OlympianScheduler::new(Arc::clone(&store), Box::new(RoundRobin::new()), QUANTUM);
    let probe = run_experiment(&probe_cfg, clients(), &mut probe_sched);
    let fresh_p50_us = probe
        .telemetry
        .hist("run_latency_us")
        .expect("latency histogram")
        .p50;
    let objective = SimDuration::from_micros((fresh_p50_us * 1.15).ceil() as u64);

    let mut cfg = EngineConfig::default();
    cfg.device = gpusim::DeviceProfile::custom(
        "regressed",
        1.4,
        cfg.device.memory_bytes(),
        cfg.device.sm_count(),
        0.0,
    );
    let tc = TelemetryConfig::enabled(INTERVAL)
        .with_slo(SloSpec::new("mini-small", objective, 0.05))
        .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 })
        .with_drift(DriftConfig::new(QUANTUM, 0.25));
    let cfg = cfg.with_trace(TraceConfig::sampled()).with_telemetry(tc);
    let mut sched =
        OlympianScheduler::new(store, Box::new(RoundRobin::new()), QUANTUM);
    run_experiment(&cfg, clients(), &mut sched)
}

#[test]
fn telemetry_exports_are_byte_identical_across_job_counts() {
    std::env::remove_var(simpar::JOBS_ENV);
    let serial = drifted_run();
    assert!(serial.all_finished());
    let serial_jsonl = serial.telemetry_jsonl();
    let serial_prom = serial.prometheus_text();

    std::env::set_var(simpar::JOBS_ENV, "2");
    let parallel = drifted_run();
    std::env::remove_var(simpar::JOBS_ENV);

    assert_eq!(
        serial_jsonl,
        parallel.telemetry_jsonl(),
        "JSON-lines export must not depend on the worker count"
    );
    assert_eq!(
        serial_prom,
        parallel.prometheus_text(),
        "Prometheus export must not depend on the worker count"
    );
}

/// The fault-recovery counters are first-class registry members: they show
/// up in both exporters even for a healthy run (at zero), and count real
/// events when a fault plan is active.
#[test]
fn fault_recovery_counters_flow_through_both_exporters() {
    const KEYS: [&str; 6] = [
        "faults_kernel",
        "faults_alloc",
        "kernel_retries",
        "breaker_open_events",
        "clients_shed",
        "watchdog_revocations",
    ];

    let cfg = EngineConfig::default().with_telemetry(TelemetryConfig::enabled(INTERVAL));
    let store = store_for(&cfg);
    let mut sched =
        OlympianScheduler::new(Arc::clone(&store), Box::new(RoundRobin::new()), QUANTUM);
    let healthy = run_experiment(&cfg, clients(), &mut sched);
    let prom = healthy.prometheus_text();
    let jsonl = healthy.telemetry_jsonl();
    for key in KEYS {
        assert!(healthy.telemetry.counter(key).is_some(), "{key} not registered");
        assert!(prom.contains(&format!("olympian_{key} 0")), "{key} missing in prom");
        assert!(jsonl.contains(&format!("\"{key}\":0")), "{key} missing in jsonl");
    }

    let plan = serving::faults::FaultPlan::new().with_kernel_failures(0.05);
    let cfg = cfg.with_faults(serving::faults::FaultConfig::new(plan));
    let mut sched = OlympianScheduler::new(store, Box::new(RoundRobin::new()), QUANTUM);
    let faulted = run_experiment(&cfg, clients(), &mut sched);
    let faults = faulted.telemetry.counter("faults_kernel").expect("registered");
    assert!(faults > 0, "plan must fire");
    assert!(faulted
        .prometheus_text()
        .contains(&format!("olympian_faults_kernel {faults}")));
    assert!(faulted
        .telemetry_jsonl()
        .contains(&format!("\"faults_kernel\":{faults}")));
}

#[test]
fn drifting_deployment_alerts_in_report_stream_and_timeline() {
    let report = drifted_run();
    let t = &report.telemetry;
    assert!(t.enabled);
    assert_eq!(t.snapshots.len() as u64, t.expected_snapshots());
    assert!(
        t.alerts.iter().any(|a| a.kind() == "drift"),
        "regressed device must trip the drift detector: {:?}",
        t.alerts
    );
    assert!(
        t.alerts.iter().any(|a| a.kind() == "slo-burn"),
        "stale objective must burn its budget: {:?}",
        t.alerts
    );

    // Every JSON-lines line parses; the stream carries both alert kinds
    // and exactly the advertised snapshot/alert counts in time order.
    let jsonl = report.telemetry_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    let meta = microjson::Value::parse(lines[0]).expect("meta line parses");
    assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
    let (mut snapshots, mut alerts, mut last_t) = (0u64, 0u64, 0u64);
    for line in &lines[1..] {
        let v = microjson::Value::parse(line).expect("every line parses");
        let at = v.get("t_ns").unwrap().as_u64().unwrap();
        assert!(at >= last_t, "stream regressed in time");
        last_t = at;
        match v.get("type").unwrap().as_str().unwrap() {
            "snapshot" => snapshots += 1,
            "alert" => alerts += 1,
            other => panic!("unexpected line type {other}"),
        }
    }
    assert_eq!(snapshots, meta.get("snapshots").unwrap().as_u64().unwrap());
    assert_eq!(alerts, meta.get("alerts").unwrap().as_u64().unwrap());
    assert!(jsonl.contains("\"kind\":\"drift\""));
    assert!(jsonl.contains("\"kind\":\"slo-burn\""));

    // The same alerts land on the Perfetto timeline as instant events.
    let trace_json = report.chrome_trace_json();
    assert!(trace_json.contains("\"drift-alert\""));
    assert!(trace_json.contains("\"slo-burn-alert\""));
    microjson::Value::parse(&trace_json).expect("chrome trace parses");
}
