//! End-to-end integration: the whole stack (models → serving engine →
//! Olympian scheduler) on miniature workloads.

use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler, RunReport};
use simtime::SimDuration;
use std::sync::Arc;

fn fair_run(cfg: &EngineConfig, clients: Vec<ClientSpec>, q_us: u64) -> RunReport {
    let profiler = Profiler::new(cfg);
    let mut store = ProfileStore::new();
    for c in &clients {
        if store.get(c.model.name(), c.model.batch()).is_none() {
            store.insert(profiler.profile(&c.model));
        }
    }
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(q_us),
    );
    run_experiment(cfg, clients, &mut sched)
}

#[test]
fn olympian_equalizes_finish_times_where_baseline_spreads() {
    let cfg = EngineConfig::default();
    let clients = vec![ClientSpec::new(models::mini::small(4), 6); 6];

    let base = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    let oly = fair_run(&cfg, clients, 300);
    assert!(base.all_finished() && oly.all_finished());

    let base_spread = metrics::max_min_ratio(&base.finish_times_secs());
    let oly_spread = metrics::max_min_ratio(&oly.finish_times_secs());
    assert!(oly_spread < 1.02, "olympian spread {oly_spread}");
    assert!(
        oly_spread < base_spread,
        "olympian ({oly_spread}) should be tighter than baseline ({base_spread})"
    );
}

#[test]
fn quantum_gpu_durations_conserve_total_gpu_time() {
    let cfg = EngineConfig::default();
    let clients = vec![ClientSpec::new(models::mini::small(2), 3); 3];
    let report = fair_run(&cfg, clients, 250);
    for c in &report.clients {
        let from_quanta: u64 = c.quantum_marks.iter().map(|(_, d)| d.as_nanos()).sum();
        let from_runs: u64 = c.run_gpu_durations.iter().map(|d| d.as_nanos()).sum();
        assert_eq!(from_quanta, from_runs, "client {}", c.client.0);
        assert_eq!(from_runs, c.total_gpu.as_nanos(), "client {}", c.client.0);
    }
}

#[test]
fn scheduling_intervals_bracket_the_quantum() {
    let cfg = EngineConfig::default();
    let clients = vec![ClientSpec::new(models::mini::small(2), 4); 4];
    let report = fair_run(&cfg, clients, 400);
    assert!(report.switch_count > 10);
    let mean_ms = report.mean_interval_ms().expect("switches happened");
    // Intervals = quantum + switch latency + overshoot; same order as Q.
    assert!(mean_ms > 0.3 && mean_ms < 2.0, "mean interval {mean_ms} ms");
}

#[test]
fn whole_report_is_deterministic_per_seed() {
    let cfg = EngineConfig::default();
    let make = || fair_run(&cfg, vec![ClientSpec::new(models::mini::branchy(2), 3); 4], 200);
    let (a, b) = (make(), make());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.switch_count, b.switch_count);
    assert_eq!(a.event_count, b.event_count);
    assert_eq!(a.finish_times_secs(), b.finish_times_secs());
    for (ca, cb) in a.clients.iter().zip(&b.clients) {
        assert_eq!(ca.quantum_marks, cb.quantum_marks);
    }
}

#[test]
fn olympian_overhead_is_bounded_on_pairs() {
    let cfg = EngineConfig::default().quiescent();
    let clients = vec![ClientSpec::new(models::mini::small(4), 4); 2];
    let base = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    let oly = fair_run(&cfg, clients, 800);
    let overhead = (oly.makespan.as_secs_f64() - base.makespan.as_secs_f64())
        / base.makespan.as_secs_f64();
    assert!(overhead < 0.25, "overhead {overhead} at generous quantum");
}

#[test]
fn profiles_roundtrip_through_disk() {
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    let mut store = ProfileStore::new();
    store.insert(profiler.profile(&models::mini::small(4)));
    store.insert(profiler.profile(&models::mini::branchy(2)));

    let dir = std::env::temp_dir().join("olympian-profile-roundtrip");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("profiles.json");
    store
        .save(std::fs::File::create(&path).expect("create"))
        .expect("save");
    let loaded = ProfileStore::load(std::fs::File::open(&path).expect("open")).expect("load");
    assert_eq!(loaded.len(), 2);
    let orig = store.get("mini-small", 4).expect("stored");
    let back = loaded.get("mini-small", 4).expect("loaded");
    assert_eq!(orig.as_ref(), back.as_ref());
}

#[test]
fn baseline_two_seeds_give_different_orderings() {
    let clients = || vec![ClientSpec::new(models::mini::small(3), 6); 6];
    let a = run_experiment(
        &EngineConfig::default().with_seed(11),
        clients(),
        &mut FifoScheduler::new(),
    );
    let b = run_experiment(
        &EngineConfig::default().with_seed(22),
        clients(),
        &mut FifoScheduler::new(),
    );
    assert_ne!(
        a.finish_times_secs(),
        b.finish_times_secs(),
        "different seeds should reshuffle the baseline"
    );
}
