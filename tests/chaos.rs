//! Chaos end-to-end checks: byte-determinism of a fault-injected run
//! across worker counts, the resilience band the recovery layer promises,
//! and stale-kernel handling after a deadline cancellation.

use faults::{FaultConfig, FaultPlan};
use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{
    run_experiment, ClientOutcome, ClientSpec, EngineConfig, FifoScheduler, RunReport,
    TraceConfig,
};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;
use telemetry::TelemetryConfig;

const QUANTUM: SimDuration = SimDuration::from_micros(200);

/// Builds the profile store through `simpar::par_map` — the code path
/// `--jobs N` parallelizes — so the determinism test actually covers the
/// parallel harness.
fn store_for(cfg: &EngineConfig) -> Arc<ProfileStore> {
    let models = [models::mini::small(4), models::mini::branchy(2)];
    let profiles = simpar::par_map(&models, |_, m| Profiler::new(cfg).profile(m));
    let mut store = ProfileStore::new();
    for p in profiles {
        store.insert(p);
    }
    Arc::new(store)
}

fn clients() -> Vec<ClientSpec> {
    vec![
        ClientSpec::new(models::mini::small(4), 6),
        ClientSpec::new(models::mini::small(4), 6),
        ClientSpec::new(models::mini::branchy(2), 6),
        ClientSpec::new(models::mini::small(4), 6),
    ]
}

/// A disturbance plan that exercises every injection point: transient
/// kernel faults, a slowdown window and a full device stall.
fn rough_plan() -> FaultPlan {
    FaultPlan::new()
        .with_kernel_failures(0.02)
        .with_slowdown(2.0, SimTime::from_millis(2), SimTime::from_millis(4))
        .with_stall(SimTime::from_millis(6), SimTime::from_millis(7))
}

/// Olympian with the watchdog armed, full recovery stack, tracing and
/// telemetry on — the most observable, most disturbed configuration.
fn chaotic_run(plan: Option<FaultPlan>) -> RunReport {
    let mut cfg = EngineConfig::default()
        .with_trace(TraceConfig::sampled())
        .with_telemetry(TelemetryConfig::enabled(SimDuration::from_micros(500)));
    // Profiles come from the healthy device: faults are a runtime
    // disturbance, not a property of the offline profile.
    let store = store_for(&cfg);
    if let Some(p) = plan {
        cfg = cfg.with_faults(FaultConfig::new(p));
    }
    let mut sched = OlympianScheduler::new(store, Box::new(RoundRobin::new()), QUANTUM)
        .with_watchdog(3.0);
    run_experiment(&cfg, clients(), &mut sched)
}

/// The acceptance gate: a faulted experiment's trace and telemetry are
/// byte-identical whether the harness runs serial or with 2 workers.
#[test]
fn faulted_run_is_byte_identical_across_job_counts() {
    std::env::remove_var(simpar::JOBS_ENV);
    let serial = chaotic_run(Some(rough_plan()));
    let serial_trace = serial.chrome_trace_json();
    let serial_jsonl = serial.telemetry_jsonl();
    let serial_prom = serial.prometheus_text();
    assert!(
        serial.telemetry.counter("faults_kernel").unwrap_or(0) > 0,
        "the plan must actually fire for the comparison to mean anything"
    );

    std::env::set_var(simpar::JOBS_ENV, "2");
    let parallel = chaotic_run(Some(rough_plan()));
    std::env::remove_var(simpar::JOBS_ENV);

    assert_eq!(
        serial_trace,
        parallel.chrome_trace_json(),
        "faulted trace must not depend on the worker count"
    );
    assert_eq!(
        serial_jsonl,
        parallel.telemetry_jsonl(),
        "faulted JSON-lines export must not depend on the worker count"
    );
    assert_eq!(
        serial_prom,
        parallel.prometheus_text(),
        "faulted Prometheus export must not depend on the worker count"
    );
}

/// The resilience band: with recovery on, survivors' Jain fairness stays
/// within 0.95 of the fault-free run, and no client wedges — every client
/// reaches a terminal outcome.
#[test]
fn recovery_holds_the_fairness_band_and_nothing_wedges() {
    let base = chaotic_run(None);
    assert!(base.all_finished());
    let faulted = chaotic_run(Some(rough_plan()));

    for c in &faulted.clients {
        assert!(
            !matches!(c.outcome, ClientOutcome::Stalled),
            "client {} wedged: every client must reach a terminal outcome",
            c.client.0
        );
    }
    let base_jain = metrics::jain_fairness(&base.finish_times_secs());
    let finish = faulted.finish_times_secs();
    assert!(!finish.is_empty(), "at least one client must survive");
    let jain = metrics::jain_fairness(&finish);
    assert!(
        jain / base_jain >= 0.95,
        "survivor fairness {jain:.4} fell outside the band of fault-free {base_jain:.4}"
    );
    // The recovery machinery visibly did its job.
    let t = &faulted.telemetry;
    assert!(t.counter("faults_kernel").unwrap_or(0) > 0);
    assert_eq!(
        t.counter("kernel_retries").unwrap_or(0),
        t.counter("faults_kernel").unwrap_or(0),
        "every transient fault is retried"
    );
}

/// Persistent faults shed the failing clients instead of wedging the run,
/// and the shed clients carry a typed terminal outcome.
#[test]
fn persistent_faults_shed_with_typed_outcomes() {
    let plan = FaultPlan::new().with_kernel_failures(0.97);
    let faulted = chaotic_run(Some(plan));
    let mut shed = 0;
    for c in &faulted.clients {
        match &c.outcome {
            ClientOutcome::RetriesExhausted { attempts, .. } => {
                assert!(*attempts > 0);
                shed += 1;
            }
            ClientOutcome::CircuitOpen { trips, .. } => {
                assert!(*trips > 0);
                shed += 1;
            }
            ClientOutcome::Finished(_) => {}
            other => panic!("client {} ended as {other}", c.client.0),
        }
    }
    assert!(shed > 0, "a 97% failure rate must shed someone");
    assert_eq!(
        faulted.telemetry.counter("clients_shed").unwrap_or(0),
        shed as u64
    );
}

/// A kernel in flight when its job is deadline-cancelled completes
/// harmlessly: no panic, no free-list corruption, and no charge against a
/// later job that reuses the slot.
#[test]
fn stale_kernel_after_deadline_cancel_is_harmless() {
    let model = models::mini::small(4); // ~1.6 ms of GPU work per run
    let cfg = EngineConfig::default();

    // Client 0 is cancelled mid-run (mid-kernel, with kernels in the
    // device FIFO behind it); client 1 keeps the device busy across the
    // cancellation; client 2 arrives *after* the cancel and reuses the
    // freed slot and memory.
    let clients = vec![
        ClientSpec::new(model.clone(), 5).with_run_deadline(SimDuration::from_micros(700)),
        ClientSpec::new(model.clone(), 3),
        ClientSpec::new(model.clone(), 1).with_start(SimTime::from_millis(2)),
    ];

    // Baseline path.
    let base = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    assert!(matches!(
        base.clients[0].outcome,
        ClientOutcome::DeadlineExceeded(_)
    ));
    assert!(base.clients[1].is_finished());
    assert!(
        base.clients[2].is_finished(),
        "slot reuse after cancel must work: {}",
        base.clients[2].outcome
    );
    // The latecomer was not charged for the cancelled job's leftovers:
    // it finishes in about one run's worth of time after its start.
    let f2 = base.clients[2].finish_time().as_secs_f64();
    assert!(
        f2 < 0.015,
        "latecomer finished at {f2}s — charged for a stale kernel?"
    );

    // Olympian path: same shape, token must keep moving.
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let mut sched =
        OlympianScheduler::new(Arc::new(store), Box::new(RoundRobin::new()), QUANTUM);
    let oly = run_experiment(&cfg, clients, &mut sched);
    assert!(matches!(
        oly.clients[0].outcome,
        ClientOutcome::DeadlineExceeded(_)
    ));
    assert!(oly.clients[1].is_finished());
    assert!(oly.clients[2].is_finished());
}
