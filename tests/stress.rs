//! Randomized stress tests: arbitrary miniature workloads across policies,
//! device counts and seeds must uphold the engine's invariants.

use olympian::{MultiGpuScheduler, OlympianScheduler, Profiler, ProfileStore};
use proptest::prelude::*;
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
use simtime::{DetRng, SimDuration, SimTime};
use std::sync::Arc;

/// Invariants every finished report must satisfy.
fn check_invariants(report: &serving::RunReport, expected_clients: usize) {
    assert_eq!(report.clients.len(), expected_clients);
    assert!(report.utilization >= 0.0 && report.utilization <= 1.0 + 1e-9);
    for c in &report.clients {
        // Conservation: quanta (if any) sum to per-run GPU time which sums
        // to the device-attributed total.
        let from_runs: u64 = c.run_gpu_durations.iter().map(|d| d.as_nanos()).sum();
        assert_eq!(from_runs, c.total_gpu.as_nanos(), "client {}", c.client.0);
        if !c.quantum_marks.is_empty() {
            let from_quanta: u64 = c.quantum_marks.iter().map(|(_, d)| d.as_nanos()).sum();
            assert_eq!(from_quanta, from_runs, "client {}", c.client.0);
        }
        // Run finish times are ordered and within the makespan.
        assert!(c.run_finish_times.windows(2).all(|w| w[0] < w[1]));
        if let Some(&last) = c.run_finish_times.last() {
            assert!(last <= report.makespan);
        }
    }
    // Scheduling intervals are positive and no more numerous than switches.
    assert!(report.scheduling_intervals.len() as u64 <= report.switch_count);
}

fn mini_for(idx: u64, batch: u64) -> models::LoadedModel {
    match idx % 3 {
        0 => models::mini::tiny(batch),
        1 => models::mini::small(batch),
        _ => models::mini::branchy(batch),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mixed workloads finish (resources are ample) and uphold
    /// conservation under every scheduler.
    #[test]
    fn random_workloads_uphold_invariants(
        seed in 0u64..1_000,
        n_clients in 1usize..6,
        policy in 0u8..4,
        gpus in 1usize..3,
    ) {
        let mut rng = DetRng::new(seed);
        let cfg = EngineConfig::default()
            .with_seed(seed ^ 0xBEEF)
            .with_device_count(gpus);
        let clients: Vec<ClientSpec> = (0..n_clients)
            .map(|i| {
                let model = mini_for(rng.next_u64(), 1 + rng.range_u64(1, 8));
                ClientSpec::new(model, 1 + rng.range_u64(0, 4) as u32)
                    .with_weight(1 + rng.range_u64(0, 3) as u32)
                    .with_priority(rng.range_u64(0, 4) as u32)
                    .with_start(SimTime::from_micros(i as u64 * rng.range_u64(0, 500)))
            })
            .collect();

        let report = if policy == 0 {
            run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new())
        } else {
            let profiler = Profiler::new(&cfg);
            let mut store = ProfileStore::new();
            for c in &clients {
                if store.get(c.model.name(), c.model.batch()).is_none() {
                    store.insert(profiler.profile(&c.model));
                }
            }
            let store = Arc::new(store);
            let q = SimDuration::from_micros(100 + rng.range_u64(0, 400));
            let factory: Box<dyn Fn() -> Box<dyn olympian::Policy>> = match policy {
                1 => Box::new(|| Box::new(olympian::RoundRobin::new())),
                2 => Box::new(|| Box::new(olympian::WeightedFair::new())),
                _ => Box::new(|| Box::new(olympian::Priority::new())),
            };
            if gpus > 1 {
                let mut sched = MultiGpuScheduler::new(store, factory, q);
                run_experiment(&cfg, clients.clone(), &mut sched)
            } else {
                let mut sched = OlympianScheduler::new(store, factory(), q);
                run_experiment(&cfg, clients.clone(), &mut sched)
            }
        };
        prop_assert!(report.all_finished(), "outcomes: {:?}",
            report.clients.iter().map(|c| &c.outcome).collect::<Vec<_>>());
        check_invariants(&report, n_clients);
    }

    /// Determinism holds across the whole configuration space: running the
    /// same random workload twice gives identical reports.
    #[test]
    fn random_workloads_are_deterministic(seed in 0u64..1_000, gpus in 1usize..3) {
        let cfg = EngineConfig::default().with_seed(seed).with_device_count(gpus);
        let make = || {
            let clients = vec![
                ClientSpec::new(models::mini::branchy(3), 2),
                ClientSpec::new(models::mini::small(2), 3),
            ];
            run_experiment(&cfg, clients, &mut FifoScheduler::new())
        };
        let (a, b) = (make(), make());
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.event_count, b.event_count);
        prop_assert_eq!(a.finish_times_secs(), b.finish_times_secs());
    }
}
