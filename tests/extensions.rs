//! Integration tests for the beyond-the-paper extensions: multi-GPU
//! scheduling, the request batcher, the lottery policy, linear-profile
//! fallback and drift detection.

use olympian::{
    drift, Lottery, MultiGpuScheduler, OlympianScheduler, Profiler, ProfileStore, RoundRobin,
};
use serving::batching::{plan_batches, poisson_arrivals, BatchingConfig};
use serving::{run_experiment, ClientSpec, EngineConfig};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;

fn store_for(cfg: &EngineConfig, models: &[models::LoadedModel]) -> Arc<ProfileStore> {
    let profiler = Profiler::new(cfg);
    let mut store = ProfileStore::new();
    for m in models {
        if store.get(m.name(), m.batch()).is_none() {
            store.insert(profiler.profile(m));
        }
    }
    Arc::new(store)
}

#[test]
fn multi_gpu_splits_clients_and_runs_independent_tokens() {
    let cfg = EngineConfig::default().with_device_count(2);
    let model = models::mini::small(4);
    let store = store_for(&cfg, std::slice::from_ref(&model));
    let mut sched =
        MultiGpuScheduler::new(store, || Box::new(RoundRobin::new()), SimDuration::from_micros(200));
    let report = run_experiment(&cfg, vec![ClientSpec::new(model, 4); 6], &mut sched);
    assert!(report.all_finished());
    assert_eq!(report.device_utilizations.len(), 2);
    assert!(sched.active_devices() == 2, "both GPUs used");
    // Both devices did real work.
    for u in &report.device_utilizations {
        assert!(*u > 0.2, "device util {u}");
    }
}

#[test]
fn multi_gpu_roughly_halves_makespan() {
    let model = models::mini::small(4);
    let clients = || vec![ClientSpec::new(model.clone(), 6); 8];
    let run_with = |gpus: usize| {
        let cfg = EngineConfig::default().with_device_count(gpus);
        let store = store_for(&cfg, std::slice::from_ref(&model));
        let mut sched = MultiGpuScheduler::new(
            store,
            || Box::new(RoundRobin::new()),
            SimDuration::from_micros(300),
        );
        run_experiment(&cfg, clients(), &mut sched)
    };
    let one = run_with(1);
    let two = run_with(2);
    assert!(one.all_finished() && two.all_finished());
    let speedup = one.makespan.as_secs_f64() / two.makespan.as_secs_f64();
    assert!(speedup > 1.6 && speedup < 2.4, "speedup {speedup}");
}

#[test]
fn single_gpu_multi_scheduler_equals_plain_olympian() {
    let cfg = EngineConfig::default();
    let model = models::mini::branchy(2);
    let clients = || vec![ClientSpec::new(model.clone(), 3); 3];
    let store = store_for(&cfg, std::slice::from_ref(&model));

    let mut plain = OlympianScheduler::new(
        Arc::clone(&store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    let a = run_experiment(&cfg, clients(), &mut plain);

    let mut multi = MultiGpuScheduler::new(
        store,
        || Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    let b = run_experiment(&cfg, clients(), &mut multi);

    assert_eq!(a.makespan, b.makespan, "one device: identical schedules");
    assert_eq!(a.switch_count, b.switch_count);
}

#[test]
fn batched_open_loop_workload_runs_end_to_end() {
    let cfg = EngineConfig::default();
    // Light load of single-request "batches" over the mini model.
    let arrivals = poisson_arrivals(50.0, SimDuration::from_millis(400), 5);
    let plan = plan_batches(&arrivals, &BatchingConfig::new(4, SimDuration::from_millis(10)));
    assert!(!plan.is_empty());
    let mut clients = Vec::new();
    let mut batch_sizes = std::collections::HashSet::new();
    for b in &plan {
        batch_sizes.insert(b.size());
        clients.push(
            ClientSpec::new(models::mini::small(b.size()), 1).with_start(b.formed_at()),
        );
    }
    let model_samples: Vec<models::LoadedModel> = batch_sizes
        .iter()
        .map(|&s| models::mini::small(s))
        .collect();
    let store = store_for(&cfg, &model_samples);
    let mut sched = OlympianScheduler::new(
        store,
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    let report = run_experiment(&cfg, clients, &mut sched);
    assert!(report.all_finished());
    // Per-request latency is measurable for every request.
    for (client, b) in report.clients.iter().zip(&plan) {
        let done = client.finish_time();
        for &a in b.request_arrivals() {
            assert!(done > a, "completion after arrival");
        }
    }
}

#[test]
fn lottery_policy_runs_and_roughly_tracks_tickets() {
    let cfg = EngineConfig::default();
    let model = models::mini::small(4);
    let store = store_for(&cfg, std::slice::from_ref(&model));
    let mut clients = vec![ClientSpec::new(model.clone(), 10).with_weight(3); 1];
    clients.push(ClientSpec::new(model, 10).with_weight(1));
    let mut sched = OlympianScheduler::new(
        store,
        Box::new(Lottery::new(7)),
        SimDuration::from_micros(150),
    );
    let report = run_experiment(&cfg, clients, &mut sched);
    assert!(report.all_finished());
    // 3-ticket client should finish clearly first.
    assert!(report.clients[0].finish_time() < report.clients[1].finish_time());
    // Shares during contention ∝ tickets, loosely (probabilistic).
    let horizon: SimTime = report.clients[0].finish_time();
    let heavy = report.clients[0].gpu_received_by(horizon).as_secs_f64();
    let light = report.clients[1].gpu_received_by(horizon).as_secs_f64();
    let ratio = heavy / light.max(1e-9);
    assert!(ratio > 1.8 && ratio < 5.0, "ticket ratio {ratio}");
}

#[test]
fn linear_fallback_admits_unprofiled_batches() {
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    // Zoo model profiled at two batches; a third batch resolves via the fit.
    let m50 = models::load(models::ModelKind::ResNet50, 50).expect("zoo model");
    let m100 = models::load(models::ModelKind::ResNet50, 100).expect("zoo model");
    let p50 = profiler.profile(&m50);
    let p100 = profiler.profile(&m100);
    let lin = olympian::LinearCostModel::fit(&[&p50, &p100]).expect("fit");
    let mut store = ProfileStore::new();
    store.insert(p50);
    store.insert(p100);
    store.insert_linear(lin);
    let m75 = models::load(models::ModelKind::ResNet50, 75).expect("zoo model");
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(1200),
    );
    let report = run_experiment(&cfg, vec![ClientSpec::new(m75, 1); 2], &mut sched);
    assert!(report.all_finished(), "linear fallback admits batch 75");
}

#[test]
fn cpu_only_jobs_coexist_with_gpu_jobs_under_olympian() {
    let cfg = EngineConfig::default();
    let gpu_model = models::mini::small(4);
    let cpu_model = models::mini::cpu_only(4);
    let store = store_for(&cfg, &[gpu_model.clone(), cpu_model.clone()]);
    let clients = vec![
        ClientSpec::new(gpu_model, 4),
        ClientSpec::new(cpu_model, 4),
        ClientSpec::new(models::mini::small(4), 4),
    ];
    let mut sched = OlympianScheduler::new(
        store,
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    let report = run_experiment(&cfg, clients, &mut sched);
    assert!(report.all_finished(), "outcomes: {:?}",
        report.clients.iter().map(|c| &c.outcome).collect::<Vec<_>>());
    assert_eq!(report.clients[1].total_gpu, SimDuration::ZERO);
    assert!(report.clients[0].total_gpu > SimDuration::ZERO);
}

#[test]
fn bursty_clients_with_think_time_leave_idle_gaps() {
    let cfg = EngineConfig::default();
    let model = models::mini::small(2);
    let busy = run_experiment(
        &cfg,
        vec![ClientSpec::new(model.clone(), 5)],
        &mut serving::FifoScheduler::new(),
    );
    let bursty = run_experiment(
        &cfg,
        vec![ClientSpec::new(model, 5).with_think_time(SimDuration::from_millis(2))],
        &mut serving::FifoScheduler::new(),
    );
    assert!(busy.all_finished() && bursty.all_finished());
    // Think time stretches the makespan by ~4 gaps and depresses utilization.
    let stretch = bursty.makespan.as_secs_f64() - busy.makespan.as_secs_f64();
    assert!((stretch - 0.008).abs() < 0.002, "stretch {stretch}");
    assert!(bursty.utilization < busy.utilization * 0.7);
}

#[test]
fn drift_detector_passes_fresh_profiles_end_to_end() {
    let cfg = EngineConfig::default();
    let model = models::mini::small(4);
    let store = store_for(&cfg, std::slice::from_ref(&model));
    let profile = store.get(model.name(), model.batch()).expect("profiled");
    let q = SimDuration::from_micros(200);
    let mut sched = OlympianScheduler::new(Arc::clone(&store), Box::new(RoundRobin::new()), q);
    let report = run_experiment(&cfg, vec![ClientSpec::new(model, 10); 3], &mut sched);
    let d = drift::detect_drift(&profile, q, &report.clients[0], 0.25, 5)
        .expect("enough quanta");
    assert!(!d.stale, "fresh profile flagged stale: {d:?}");
}

#[test]
fn drift_detector_flags_stale_profiles_end_to_end() {
    let cfg = EngineConfig::default();
    let model = models::mini::small(4);
    let store = store_for(&cfg, std::slice::from_ref(&model));
    let profile = store.get(model.name(), model.batch()).expect("profiled");

    // Deployment drifted: kernels now run 40% slower than when profiled
    // (e.g. a driver regression). The scheduler still uses the old profile.
    let mut drifted = cfg.clone();
    drifted.device = gpusim::DeviceProfile::custom(
        "regressed",
        1.4,
        drifted.device.memory_bytes(),
        drifted.device.sm_count(),
        0.0,
    );
    let q = SimDuration::from_micros(200);
    let mut sched = OlympianScheduler::new(Arc::clone(&store), Box::new(RoundRobin::new()), q);
    let report = run_experiment(&drifted, vec![ClientSpec::new(model, 10); 3], &mut sched);
    let d = drift::detect_drift(&profile, q, &report.clients[0], 0.25, 5)
        .expect("enough quanta");
    assert!(d.stale, "40% slower device should be flagged: {d:?}");
    assert!(d.observed_mean_us > d.expected_quantum_us * 1.25);
}

#[test]
fn trace_records_the_full_lifecycle() {
    use serving::trace::{render_trace, TraceConfig, TraceKind};
    let cfg = EngineConfig::default().with_trace(TraceConfig::sampled());
    let model = models::mini::small(2);
    let store = store_for(&cfg, std::slice::from_ref(&model));
    let mut sched = OlympianScheduler::new(
        store,
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    let report = run_experiment(&cfg, vec![ClientSpec::new(model, 2); 2], &mut sched);
    assert!(report.all_finished());
    let trace = &report.trace;
    assert!(!trace.is_empty());
    assert_eq!(trace.dropped, 0);
    // Timestamps never go backwards and sequence numbers are dense.
    assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
    assert!(trace.events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
    // Every lifecycle stage appears.
    let count =
        |pred: &dyn Fn(&TraceKind) -> bool| trace.events.iter().filter(|e| pred(&e.kind)).count();
    assert_eq!(count(&|k| matches!(k, TraceKind::ClientAdmitted { .. })), 2);
    assert_eq!(count(&|k| matches!(k, TraceKind::RunRegistered { .. })), 4);
    assert_eq!(count(&|k| matches!(k, TraceKind::RunCompleted { .. })), 4);
    assert_eq!(count(&|k| matches!(k, TraceKind::ClientFinished { .. })), 2);
    // The token holder walks None -> Some -> ... -> None, so grants and
    // revokes pair up exactly, and every engine-counted switch left a mark.
    let grants = count(&|k| matches!(k, TraceKind::TokenGrant { .. })) as u64;
    let revokes = count(&|k| matches!(k, TraceKind::TokenRevoke { .. })) as u64;
    assert_eq!(grants, revokes, "every granted token is eventually revoked");
    assert!(grants >= 1 && grants <= report.switch_count);
    assert!(grants + revokes >= report.switch_count);
    // Sampled mode skips per-kernel events.
    assert_eq!(count(&|k| matches!(k, TraceKind::KernelLaunch { .. })), 0);
    let rendered = render_trace(trace, 10);
    assert!(rendered.lines().count() >= 10);
}

#[test]
fn trace_is_empty_when_disabled() {
    let cfg = EngineConfig::default();
    let report = run_experiment(
        &cfg,
        vec![ClientSpec::new(models::mini::tiny(1), 1)],
        &mut serving::FifoScheduler::new(),
    );
    assert!(report.trace.is_empty());
}
