//! Integration tests of the real-thread cooperative gang scheduler.

use olympian::threaded::{GangPool, GangWorkload};

#[test]
fn three_real_gangs_share_fairly() {
    let pool = GangPool::fair(300);
    let outcome = pool.run(vec![GangWorkload::new(60, 30, 2); 3]);
    assert_eq!(outcome.finish_order.len(), 3);
    let secs: Vec<f64> = outcome.finish_times.iter().map(|t| t.as_secs_f64()).collect();
    let max = secs.iter().cloned().fold(0.0_f64, f64::max);
    let min = secs.iter().cloned().fold(f64::MAX, f64::min);
    // Cooperative slicing keeps identical gangs within a loose band even
    // under real-scheduler noise.
    assert!(max / min < 1.8, "finish spread {}", max / min);
    assert!(outcome.switches >= 3);
}

#[test]
fn uneven_workloads_finish_in_size_order() {
    let pool = GangPool::fair(200);
    let outcome = pool.run(vec![
        GangWorkload::new(20, 20, 2),
        GangWorkload::new(120, 20, 2),
    ]);
    assert_eq!(outcome.finish_order.first().map(|g| g.0), Some(0));
    assert!(outcome.finish_times[0] < outcome.finish_times[1]);
}

#[test]
fn wide_gangs_do_not_deadlock() {
    let pool = GangPool::fair(150);
    let outcome = pool.run(vec![
        GangWorkload::new(40, 15, 4),
        GangWorkload::new(40, 15, 4),
        GangWorkload::new(40, 15, 1),
    ]);
    assert_eq!(outcome.finish_order.len(), 3);
}
