//! Failure injection: out-of-memory admission, missing profiles, and
//! worker-thread exhaustion under gang-holding scheduling.

use gpusim::DeviceProfile;
use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientOutcome, ClientSpec, EngineConfig, FifoScheduler};
use simtime::SimDuration;
use std::sync::Arc;

fn tiny_device(bytes: u64) -> DeviceProfile {
    DeviceProfile::custom("tiny", 1.0, bytes, 4, 0.0)
}

#[test]
fn oom_rejects_latecomers_and_reports_sizes() {
    let model = models::mini::small(4);
    let per_client = model.activation_bytes();
    // Weights + two clients' activations, not three.
    let cfg = EngineConfig {
        device: tiny_device(model.weights_bytes() + 2 * per_client + per_client / 2),
        ..EngineConfig::default()
    };
    let clients = vec![ClientSpec::new(model, 1); 3];
    let report = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    assert_eq!(report.finished_count(), 2);
    match &report.clients[2].outcome {
        ClientOutcome::RejectedOom { requested, available } => {
            assert_eq!(*requested, per_client);
            assert!(available < requested);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn unprofiled_model_is_rejected_by_olympian_not_by_baseline() {
    let cfg = EngineConfig::default();
    let model = models::mini::small(4);
    let clients = vec![ClientSpec::new(model.clone(), 1); 2];

    // Baseline doesn't care about profiles.
    let base = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    assert!(base.all_finished());

    // Olympian refuses to run without a profile for (model, batch).
    let empty = Arc::new(ProfileStore::new());
    let mut sched =
        OlympianScheduler::new(empty, Box::new(RoundRobin::new()), SimDuration::from_micros(100));
    let report = run_experiment(&cfg, clients, &mut sched);
    assert_eq!(report.finished_count(), 0);
    for c in &report.clients {
        match &c.outcome {
            ClientOutcome::RejectedByScheduler(msg) => {
                assert!(msg.contains("no offline profile"), "msg: {msg}");
            }
            other => panic!("expected scheduler rejection, got {other:?}"),
        }
    }
}

#[test]
fn profile_for_wrong_batch_does_not_admit() {
    let cfg = EngineConfig::default();
    let model_b4 = models::mini::small(4);
    let model_b8 = models::mini::small(8);
    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model_b4));
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(100),
    );
    let report = run_experiment(&cfg, vec![ClientSpec::new(model_b8, 1)], &mut sched);
    assert_eq!(report.finished_count(), 0);
}

#[test]
fn gang_holding_exhausts_small_pool_and_stalls() {
    // Chain-shaped jobs hold one gang thread each for their whole run;
    // under Olympian, *suspended* gangs keep holding theirs, so a pool
    // smaller than the client count wedges once enough gangs have parked.
    let model = models::mini::small(4);
    let cfg = EngineConfig {
        pool_size: 3,
        max_gang: 4,
        min_effective_gang: 4,
        ..EngineConfig::default()
    };

    let cfg_oly = cfg.clone();
    let profiler = Profiler::new(&cfg_oly);
    let mut store = ProfileStore::new();
    store.insert(profiler.profile(&model));
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(100),
    );
    let clients = vec![ClientSpec::new(model.clone(), 2); 4];
    let oly = run_experiment(&cfg_oly, clients.clone(), &mut sched);
    assert!(
        oly.clients.iter().any(|c| c.outcome == ClientOutcome::Stalled),
        "suspended gangs should pin the pool: {:?}",
        oly.clients.iter().map(|c| &c.outcome).collect::<Vec<_>>()
    );

    // The baseline with the same pool merely serializes — it finishes.
    let base = run_experiment(&cfg, clients, &mut FifoScheduler::new());
    assert!(base.all_finished(), "TF-Serving should survive a small pool");
}

#[test]
fn weights_are_shared_across_clients_of_one_model() {
    let model = models::mini::small(4);
    // Enough for ONE copy of the weights plus three activations — only
    // works if weights are loaded once.
    let cfg = EngineConfig {
        device: tiny_device(model.weights_bytes() + 3 * model.activation_bytes()),
        ..EngineConfig::default()
    };
    let report = run_experiment(
        &cfg,
        vec![ClientSpec::new(model, 1); 3],
        &mut FifoScheduler::new(),
    );
    assert!(report.all_finished(), "servable sharing failed");
}

#[test]
fn peak_memory_is_reported() {
    let model = models::mini::small(4);
    let cfg = EngineConfig::default();
    let report = run_experiment(
        &cfg,
        vec![ClientSpec::new(model.clone(), 1); 2],
        &mut FifoScheduler::new(),
    );
    assert_eq!(
        report.peak_memory,
        model.weights_bytes() + 2 * model.activation_bytes()
    );
}
