//! End-to-end checks of the time-series store: byte-determinism of the
//! persisted run documents across worker counts and the sharded entry
//! point, save/load/save round-trip stability, the run catalog, and the
//! headline guarantee — a quantile diff over *stored* history reproduces
//! the attribution layer's p99 blame delta without re-simulating anything.

use olympian::{OlympianScheduler, ProfileStore, Profiler, RoundRobin};
use serving::attrib;
use serving::{
    run_experiment, run_sharded_experiment, ClientSpec, EngineConfig, RunReport,
    TraceConfig,
};
use simtime::SimDuration;
use std::sync::Arc;
use telemetry::{BurnWindows, DriftConfig, SloSpec, TelemetryConfig};
use tsdb::{diff_rows, evaluate, Expr, RunCatalog};

const QUANTUM: SimDuration = SimDuration::from_micros(200);
const INTERVAL: SimDuration = SimDuration::from_micros(100);

/// Builds the profile store through `simpar::par_map` — the code path
/// `--jobs N` parallelizes — so the determinism matrix actually covers
/// the parallel harness.
fn store_for(cfg: &EngineConfig) -> Arc<ProfileStore> {
    let models = [models::mini::small(4)];
    let profiles = simpar::par_map(&models, |_, m| Profiler::new(cfg).profile(m));
    let mut store = ProfileStore::new();
    for p in profiles {
        store.insert(p);
    }
    Arc::new(store)
}

fn clients() -> Vec<ClientSpec> {
    vec![ClientSpec::new(models::mini::small(4), 8); 3]
}

fn fair(store: Arc<ProfileStore>) -> OlympianScheduler {
    OlympianScheduler::new(store, Box::new(RoundRobin::new()), QUANTUM)
}

/// Healthy baseline: fresh device, generous objective, nothing fires.
fn healthy_run() -> RunReport {
    let tc = TelemetryConfig::enabled(INTERVAL).with_slo(SloSpec::new(
        "mini-small",
        SimDuration::from_secs(1),
        0.05,
    ));
    let cfg = EngineConfig::default()
        .with_trace(TraceConfig::sampled())
        .with_telemetry(tc);
    let store = store_for(&cfg);
    run_experiment(&cfg, clients(), &mut fair(store))
}

/// Incident run: the device regressed 40% after profiling, so the stale
/// profiles overshoot the quantum and every run breaches the objective
/// calibrated on the fresh device — both monitors fire mid-run.
fn drifted_run() -> RunReport {
    let fresh = EngineConfig::default();
    let store = store_for(&fresh);

    let probe_cfg = fresh.with_telemetry(TelemetryConfig::enabled(INTERVAL));
    let probe = run_experiment(&probe_cfg, clients(), &mut fair(Arc::clone(&store)));
    let fresh_p50_us =
        probe.telemetry.hist("run_latency_us").expect("latency histogram").p50;
    let objective = SimDuration::from_micros((fresh_p50_us * 1.15).ceil() as u64);

    let mut cfg = EngineConfig::default();
    cfg.device = gpusim::DeviceProfile::custom(
        "regressed",
        1.4,
        cfg.device.memory_bytes(),
        cfg.device.sm_count(),
        0.0,
    );
    let tc = TelemetryConfig::enabled(INTERVAL)
        .with_slo(SloSpec::new("mini-small", objective, 0.05))
        .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 })
        .with_drift(DriftConfig::new(QUANTUM, 0.25));
    let cfg = cfg.with_trace(TraceConfig::sampled()).with_telemetry(tc);
    run_experiment(&cfg, clients(), &mut fair(store))
}

fn stored_bytes(report: &RunReport, run: &str) -> String {
    let mut text = report.tsdb().to_json(run).to_string();
    text.push('\n');
    text
}

#[test]
fn stored_runs_are_byte_identical_across_job_counts() {
    std::env::remove_var(simpar::JOBS_ENV);
    let serial = drifted_run();
    assert!(serial.all_finished());
    let serial_doc = stored_bytes(&serial, "drifted");

    std::env::set_var(simpar::JOBS_ENV, "2");
    let parallel = drifted_run();
    std::env::remove_var(simpar::JOBS_ENV);

    assert_eq!(
        serial_doc,
        stored_bytes(&parallel, "drifted"),
        "persisted run document must not depend on the worker count"
    );
}

#[test]
fn stored_runs_are_byte_identical_across_the_sharded_entry_point() {
    // Telemetry requires a single device group, where the sharded runner
    // collapses onto `run_experiment` — the document must survive the
    // detour through the shard planner byte-for-byte.
    let tc = TelemetryConfig::enabled(INTERVAL).with_slo(SloSpec::new(
        "mini-small",
        SimDuration::from_secs(1),
        0.05,
    ));
    let cfg = EngineConfig::default()
        .with_trace(TraceConfig::sampled())
        .with_telemetry(tc);
    let store = store_for(&cfg);

    let direct = run_experiment(&cfg, clients(), &mut fair(Arc::clone(&store)));
    let sharded = run_sharded_experiment(&cfg, clients(), &{
        let store = Arc::clone(&store);
        move |_gid: usize| -> Box<dyn serving::Scheduler> { Box::new(fair(Arc::clone(&store))) }
    });
    assert_eq!(
        stored_bytes(&direct, "smoke"),
        stored_bytes(&sharded, "smoke"),
        "sharded single-group runs must persist identically to direct runs"
    );
}

#[test]
fn catalog_roundtrip_is_byte_identical() {
    let dir = std::env::temp_dir()
        .join(format!("olympian-tsdb-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = RunCatalog::open(&dir).expect("open catalog");

    let report = drifted_run();
    let store = report.tsdb();
    let path = catalog.store_run("drifted", &store).expect("store run");
    let first = std::fs::read_to_string(&path).expect("read run");

    // load → save must reproduce the file byte-for-byte: totals, eviction
    // counts and tier contents all survive the round trip.
    let loaded = catalog.load_run("drifted").expect("load run");
    catalog.store_run("drifted", &loaded).expect("re-store run");
    let second = std::fs::read_to_string(&path).expect("re-read run");
    assert_eq!(first, second, "save(load(x)) must equal save(x)");

    assert_eq!(catalog.runs(), vec!["drifted".to_string()]);
    assert_eq!(catalog.latest(None).as_deref(), Some("drifted"));
    assert_eq!(catalog.latest(Some("drifted")), None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline guarantee: `p99{client=*}` diffed between two *stored*
/// runs reproduces the attribution layer's total p99 blame delta exactly —
/// the store keeps the loss-free latency stream, not histogram summaries,
/// so nothing about the incident is lost by going through disk.
#[test]
fn stored_quantile_diff_reproduces_the_blame_delta() {
    let dir = std::env::temp_dir()
        .join(format!("olympian-tsdb-blame-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = RunCatalog::open(&dir).expect("open catalog");

    let base = healthy_run();
    let target = drifted_run();
    catalog.store_run("smoke", &base.tsdb()).expect("store smoke");
    catalog.store_run("drifted", &target.tsdb()).expect("store drifted");

    // Ground truth: the attribution layer's per-client nearest-rank p99
    // diff over the traced run spans.
    let cfg = EngineConfig::default();
    let horizon = cfg.switch_latency + cfg.launch_overhead;
    let blame =
        attrib::diff(&target.attribution(horizon), &base.attribution(horizon));
    assert!(blame.delta_total_ns > 0, "regressed device must be slower");

    // Replay the question from disk alone.
    let t = catalog.load_run("drifted").expect("load drifted");
    let b = catalog.load_run("smoke").expect("load smoke");
    let expr = Expr::parse("p99{client=*}").expect("parse");
    let rows = diff_rows(&t, &b, &expr);
    assert_eq!(rows.len(), 3, "one row per client");
    let total: f64 = rows.iter().filter_map(|r| r.delta()).sum();
    assert_eq!(
        total as i64, blame.delta_total_ns,
        "stored-history p99 delta must equal the blame report's total"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dashboard_and_queries_cover_the_stored_run() {
    let report = drifted_run();
    let store = report.tsdb();
    assert!(store.series_count() > 0 && !store.alerts().is_empty());

    // Every series draws exactly one sparkline SVG.
    let html = tsdb::render_dashboard("drifted", &store, None);
    assert_eq!(html.matches("class=\"series\"").count(), store.series_count());
    assert_eq!(
        html.matches("<!DOCTYPE html>").count(),
        1,
        "dashboard must be a single self-contained document"
    );

    // Counter rates and latency quantiles evaluate over the full window.
    let runs = report.telemetry.counter("runs_completed").expect("counter") as f64;
    let rate = evaluate(&store, &Expr::parse("rate:runs_completed").expect("parse"));
    assert_eq!(rate.len(), 1);
    let makespan_s = report.makespan.as_secs_f64();
    assert!(
        (rate[0].value - runs / makespan_s).abs() / (runs / makespan_s) < 0.05,
        "rate over the stored window must approximate completions/makespan: \
         {} vs {}",
        rate[0].value,
        runs / makespan_s
    );
    let p99 = evaluate(&store, &Expr::parse("p99{client=\"0\"}").expect("parse"));
    assert_eq!(p99.len(), 1);
    assert!(p99[0].value > 0.0);
}
