//! End-to-end policy behaviour on miniature workloads: weighted shares,
//! priority ordering, and deficit round robin.

use olympian::{DeficitRoundRobin, OlympianScheduler, Priority, Profiler, ProfileStore,
    WeightedFair};
use serving::{run_experiment, ClientSpec, EngineConfig, RunReport};
use simtime::SimDuration;
use std::sync::Arc;

fn run_with(policy: Box<dyn olympian::Policy>, clients: Vec<ClientSpec>) -> RunReport {
    let cfg = EngineConfig::default();
    let profiler = Profiler::new(&cfg);
    let mut store = ProfileStore::new();
    for c in &clients {
        if store.get(c.model.name(), c.model.batch()).is_none() {
            store.insert(profiler.profile(&c.model));
        }
    }
    let mut sched =
        OlympianScheduler::new(Arc::new(store), policy, SimDuration::from_micros(200));
    run_experiment(&cfg, clients, &mut sched)
}

#[test]
fn weighted_fair_group_ratio_follows_theory() {
    // 2 heavy (weight 2) + 2 light (weight 1), enough batches to average.
    let model = models::mini::small(4);
    let mut clients = vec![ClientSpec::new(model.clone(), 8).with_weight(2); 2];
    clients.extend(vec![ClientSpec::new(model, 8).with_weight(1); 2]);
    let report = run_with(Box::new(WeightedFair::new()), clients);
    assert!(report.all_finished());
    let f = report.finish_times_secs();
    let heavy = (f[0] + f[1]) / 2.0;
    let light = (f[2] + f[3]) / 2.0;
    let expected = 3.0 / 4.0; // (k+1)/2k for k=2
    let got = heavy / light;
    assert!((got - expected).abs() < 0.08, "ratio {got} vs {expected}");
}

#[test]
fn priority_strictly_orders_three_levels() {
    let model = models::mini::small(4);
    let clients = vec![
        ClientSpec::new(model.clone(), 5).with_priority(1),
        ClientSpec::new(model.clone(), 5).with_priority(9),
        ClientSpec::new(model, 5).with_priority(5),
    ];
    let report = run_with(Box::new(Priority::new()), clients);
    assert!(report.all_finished());
    let f = report.finish_times_secs();
    assert!(f[1] < f[2] && f[2] < f[0], "priority order violated: {f:?}");
}

#[test]
fn priority_same_level_fair_shares() {
    let model = models::mini::small(4);
    let clients = vec![ClientSpec::new(model, 5).with_priority(3); 3];
    let report = run_with(Box::new(Priority::new()), clients);
    assert!(report.all_finished());
    let spread = metrics::max_min_ratio(&report.finish_times_secs());
    assert!(spread < 1.02, "same-priority spread {spread}");
}

#[test]
fn deficit_round_robin_matches_weighted_shares() {
    let model = models::mini::small(4);
    let mut clients = vec![ClientSpec::new(model.clone(), 8).with_weight(3); 2];
    clients.extend(vec![ClientSpec::new(model, 8).with_weight(1); 2]);
    let report = run_with(Box::new(DeficitRoundRobin::new()), clients);
    assert!(report.all_finished());
    let f = report.finish_times_secs();
    let heavy = (f[0] + f[1]) / 2.0;
    let light = (f[2] + f[3]) / 2.0;
    // (k+1)/2k for k=3 → 0.667
    assert!((heavy / light - 2.0 / 3.0).abs() < 0.10, "drr ratio {}", heavy / light);
}

#[test]
fn late_arriving_high_priority_preempts_at_quantum_boundary() {
    let model = models::mini::small(4);
    let clients = vec![
        ClientSpec::new(model.clone(), 6).with_priority(1),
        ClientSpec::new(model, 2)
            .with_priority(9)
            .with_start(simtime::SimTime::from_millis(1)),
    ];
    let report = run_with(Box::new(Priority::new()), clients);
    assert!(report.all_finished());
    // The late VIP finishes well before the early background job.
    assert!(
        report.clients[1].finish_time() < report.clients[0].finish_time(),
        "VIP should preempt"
    );
}
