//! End-to-end checks of the attribution layer: exact phase tiling across
//! scheduler × fault/lifecycle cells, and byte-determinism of the blame
//! report across worker counts.

use models::LoadedModel;
use olympian::{OlympianScheduler, ProfileStore, Profiler, RoundRobin, StoreBinder};
use serving::attrib::{critical_path, render_text, Attribution, Phase};
use serving::faults::{FaultConfig, FaultPlan};
use serving::lifecycle::{DeploymentPlan, LifecycleConfig, ModelDeployment};
use serving::{
    run_experiment, ClientSpec, EngineConfig, FifoScheduler, RunReport, TraceConfig,
};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;
use trace::TraceKind;

const QUANTUM: SimDuration = SimDuration::from_micros(200);

fn attribution_of(report: &RunReport) -> Attribution {
    let cfg = EngineConfig::default();
    report.attribution(cfg.switch_latency + cfg.launch_overhead)
}

/// A faulted run: aggressive kernel failures so retries (and their backoff
/// phases) actually occur, plus a mid-run slowdown window.
fn faulted_run(olympian: bool) -> RunReport {
    let plan = FaultPlan::new()
        .with_kernel_failures(0.2)
        .with_slowdown(2.0, SimTime::from_millis(1), SimTime::from_millis(2));
    let cfg = EngineConfig { seed: 11, ..EngineConfig::default() }
        .with_trace(TraceConfig::full())
        .with_faults(FaultConfig::new(plan));
    let model = models::mini::tiny(4);
    let clients: Vec<ClientSpec> = (0..3).map(|_| ClientSpec::new(model.clone(), 2)).collect();
    if olympian {
        let mut store = ProfileStore::new();
        store.insert(Profiler::new(&cfg).profile(&model));
        let mut sched =
            OlympianScheduler::new(Arc::new(store), Box::new(RoundRobin::new()), QUANTUM);
        run_experiment(&cfg, clients, &mut sched)
    } else {
        run_experiment(&cfg, clients, &mut FifoScheduler::new())
    }
}

/// Rebadges a mini-zoo model as a named service (deployments and clients
/// must agree on the name).
fn service(name: &str) -> LoadedModel {
    let m = models::mini::tiny(4);
    LoadedModel::from_parts(
        name,
        None,
        m.batch(),
        Arc::clone(m.graph()),
        m.weights_bytes(),
        m.activation_bytes(),
    )
}

/// A lifecycle run: versions load and warm on demand, so runs wait on the
/// lifecycle manager before registering.
fn lifecycle_run(olympian: bool) -> RunReport {
    let services = ["svc-0", "svc-1"];
    let mut plan = DeploymentPlan::new();
    for name in services {
        plan = plan.with_model(ModelDeployment::new(name.to_string(), service(name)));
    }
    let mut cfg =
        EngineConfig { seed: 7, ..EngineConfig::default() }.with_trace(TraceConfig::full());
    let store = Arc::new(ProfileStore::new());
    let binder = StoreBinder::calibrate(&cfg, &plan, Arc::clone(&store));
    cfg = cfg.with_lifecycle(LifecycleConfig::new(plan).with_binder(binder));
    let clients: Vec<ClientSpec> = services
        .iter()
        .map(|name| ClientSpec::new(service(name), 2))
        .collect();
    if olympian {
        let mut sched = OlympianScheduler::new(store, Box::new(RoundRobin::new()), QUANTUM);
        run_experiment(&cfg, clients, &mut sched)
    } else {
        run_experiment(&cfg, clients, &mut FifoScheduler::new())
    }
}

/// The tiling property every cell must satisfy: phases sum to each run's
/// span exactly and the claimed intervals are contiguous over it.
fn assert_exact_tiling(attr: &Attribution) {
    assert!(!attr.runs.is_empty());
    for r in &attr.runs {
        let sum: u64 = r.phase_ns.iter().sum();
        assert_eq!(sum, r.span_ns(), "phases must tile job {} exactly", r.job);
        let mut cursor = r.start_ns;
        for iv in &r.intervals {
            assert_eq!(iv.start_ns, cursor, "hole in job {}", r.job);
            cursor = iv.end_ns;
        }
        assert_eq!(cursor, r.end_ns, "job {} not covered to its end", r.job);
    }
}

#[test]
fn phases_tile_exactly_across_scheduler_and_fault_cells() {
    for olympian in [false, true] {
        let report = faulted_run(olympian);
        let attr = attribution_of(&report);
        assert_exact_tiling(&attr);
        assert_eq!(attr.token_based, olympian);
        let totals = attr.phase_totals_ns();
        // The injected kernel failures schedule real retries, which must
        // surface as a non-empty backoff phase.
        let retried = report
            .trace
            .filter(|k| matches!(k, TraceKind::RetryScheduled { job, .. } if *job != u64::MAX))
            .count();
        if retried > 0 {
            assert!(totals[Phase::Backoff.index()] > 0, "retries imply backoff time");
        }
        if !olympian {
            assert_eq!(totals[Phase::TokenWait.index()], 0, "fifo has no token wait");
        }
    }
}

#[test]
fn phases_tile_exactly_across_scheduler_and_lifecycle_cells() {
    for olympian in [false, true] {
        let report = lifecycle_run(olympian);
        let attr = attribution_of(&report);
        assert_exact_tiling(&attr);
        let totals = attr.phase_totals_ns();
        let waited = report
            .trace
            .filter(|k| matches!(k, TraceKind::LifecycleWait { .. }))
            .count();
        assert!(waited > 0, "on-demand versions must make runs wait on the loader");
        assert!(totals[Phase::LoadWait.index()] > 0, "lifecycle waits imply load-wait time");
    }
}

#[test]
fn critical_path_blame_accounts_for_the_makespan() {
    let report = faulted_run(true);
    let attr = attribution_of(&report);
    let cp = critical_path(&attr);
    assert_eq!(cp.span_ns, attr.makespan_ns);
    let phase_total: u64 = cp.blame_ns.iter().map(|&(_, v)| v).sum();
    let client_total: u64 = cp.client_blame_ns.iter().sum();
    assert_eq!(phase_total, cp.span_ns);
    assert_eq!(client_total, cp.span_ns);
}

#[test]
fn blame_report_is_byte_identical_across_job_counts() {
    let render = |report: &RunReport| {
        let attr = attribution_of(report);
        let cp = critical_path(&attr);
        render_text("cell", &attr, &cp, None)
    };
    std::env::remove_var(simpar::JOBS_ENV);
    let serial = render(&faulted_run(true));
    std::env::set_var(simpar::JOBS_ENV, "2");
    let parallel = render(&faulted_run(true));
    std::env::remove_var(simpar::JOBS_ENV);
    assert_eq!(serial, parallel, "blame text must not depend on the worker count");
}
