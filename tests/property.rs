//! Property-based tests over the core data structures and invariants.

use dataflow::{GraphBuilder, NodeTemplate, OpKind};
use metrics::linear_fit;
use olympian::{Policy, Priority, RoundRobin, WeightedFair};
use proptest::prelude::*;
use serving::JobId;
use simtime::{DetRng, EventQueue, IntervalUnion, SimDuration, SimTime};

proptest! {
    /// The event queue pops in non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((pt, pi)) = prev {
                prop_assert!(pt <= t);
                if pt == t {
                    prop_assert!(pi < i, "FIFO violated among ties");
                }
            }
            prev = Some((t, i));
        }
    }

    /// IntervalUnion agrees with a brute-force boolean-timeline oracle.
    #[test]
    fn interval_union_matches_oracle(
        spans in prop::collection::vec((0u64..500, 1u64..60), 0..40)
    ) {
        let mut u = IntervalUnion::new();
        let mut timeline = [false; 600];
        for &(start, len) in &spans {
            let end = start + len;
            u.add(SimTime::from_nanos(start), SimTime::from_nanos(end));
            for slot in timeline.iter_mut().take(end as usize).skip(start as usize) {
                *slot = true;
            }
        }
        let oracle: u64 = timeline.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(u.total().as_nanos(), oracle);
    }

    /// Random layered DAGs build successfully and topo-sort completely.
    #[test]
    fn random_layered_graphs_are_valid(
        layers in prop::collection::vec(1usize..5, 1..8),
        seed in 0u64..1000,
    ) {
        let mut rng = DetRng::new(seed);
        let mut b = GraphBuilder::new();
        let mut prev_layer: Vec<dataflow::NodeId> = Vec::new();
        let mut total = 0usize;
        for (li, &width) in layers.iter().enumerate() {
            let layer: Vec<dataflow::NodeId> = (0..width)
                .map(|i| {
                    b.add_node(NodeTemplate::gpu(
                        format!("n{li}_{i}"),
                        OpKind::Conv2d,
                        SimDuration::from_nanos(1 + rng.range_u64(0, 100)),
                        1 + rng.range_u64(0, 50),
                    ))
                })
                .collect();
            for node in &layer {
                for parent in &prev_layer {
                    if rng.next_f64() < 0.6 {
                        b.add_edge(*parent, *node).expect("fresh edge");
                    }
                }
            }
            total += width;
            prev_layer = layer;
        }
        let g = b.build().expect("layered graphs are acyclic");
        prop_assert_eq!(g.node_count(), total);
        prop_assert_eq!(g.topo_order().len(), total);
        prop_assert!(!g.roots().is_empty());
    }

    /// Least squares recovers an exact affine relationship.
    #[test]
    fn linear_fit_recovers_affine(
        a in -1e3..1e3f64,
        m in -1e3..1e3f64,
        xs in prop::collection::hash_set(0u32..10_000, 2..20),
    ) {
        let pts: Vec<(f64, f64)> = xs
            .into_iter()
            .map(|x| (f64::from(x), a + m * f64::from(x)))
            .collect();
        let (ia, im) = linear_fit(&pts);
        prop_assert!((ia - a).abs() < 1e-6 * (1.0 + a.abs()), "{ia} vs {a}");
        prop_assert!((im - m).abs() < 1e-6 * (1.0 + m.abs()), "{im} vs {m}");
    }

    /// Round-robin visits every registered job exactly once per cycle.
    #[test]
    fn round_robin_is_a_cycle(n in 1u64..30) {
        let mut p = RoundRobin::new();
        let mut current = None;
        for j in 0..n {
            current = p.admit(JobId(j), 1, 0, current);
        }
        let mut holder = current.expect("jobs admitted");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            prop_assert!(seen.insert(holder), "revisited {holder} early");
            holder = p.quantum_expired(holder).expect("non-empty ring");
        }
        prop_assert_eq!(seen.len() as u64, n);
    }

    /// Weighted fair gives each job exactly `weight` quanta per cycle.
    #[test]
    fn weighted_fair_quanta_proportional(weights in prop::collection::vec(1u32..5, 2..8)) {
        let mut p = WeightedFair::new();
        let mut current = None;
        for (j, &w) in weights.iter().enumerate() {
            current = p.admit(JobId(j as u64), w, 0, current);
        }
        let mut holder = current.expect("jobs admitted");
        let cycle: u32 = weights.iter().sum();
        let mut counts = vec![0u32; weights.len()];
        for _ in 0..cycle * 3 {
            counts[holder.0 as usize] += 1;
            holder = p.quantum_expired(holder).expect("non-empty ring");
        }
        for (j, &w) in weights.iter().enumerate() {
            prop_assert_eq!(counts[j], w * 3, "job {} got {} of {}", j, counts[j], w * 3);
        }
    }

    /// Priority never schedules below the highest live level.
    #[test]
    fn priority_never_runs_lower_level(prios in prop::collection::vec(0u32..5, 2..10)) {
        let mut p = Priority::new();
        let mut current = None;
        for (j, &pr) in prios.iter().enumerate() {
            current = p.admit(JobId(j as u64), 1, pr, current);
        }
        let top = *prios.iter().max().expect("non-empty");
        let mut holder = current.expect("jobs admitted");
        // After one expiry the holder must sit in the top level forever.
        for _ in 0..20 {
            holder = p.quantum_expired(holder).expect("non-empty");
            prop_assert_eq!(prios[holder.0 as usize], top);
        }
    }

    /// The batcher partitions every arrival into exactly one batch, in
    /// order, never exceeding the size cap, closing timeouts promptly.
    #[test]
    fn batcher_partitions_arrivals(
        gaps in prop::collection::vec(0u64..40_000, 1..120),
        max_batch in 1u64..12,
        timeout_us in 1u64..30_000,
    ) {
        use serving::batching::{plan_batches, BatchingConfig};
        let mut t = 0u64;
        let arrivals: Vec<SimTime> = gaps
            .iter()
            .map(|&g| {
                t += g;
                SimTime::from_nanos(t * 1000)
            })
            .collect();
        let cfg = BatchingConfig::new(max_batch, SimDuration::from_micros(timeout_us));
        let plan = plan_batches(&arrivals, &cfg);
        // Partition: total sizes add up and arrivals appear in order.
        let total: u64 = plan.iter().map(|b| b.size()).sum();
        prop_assert_eq!(total as usize, arrivals.len());
        let flat: Vec<SimTime> = plan
            .iter()
            .flat_map(|b| b.request_arrivals().iter().copied())
            .collect();
        prop_assert_eq!(flat, arrivals.clone());
        for b in &plan {
            prop_assert!(b.size() <= max_batch);
            // A batch closes no later than first arrival + timeout, and no
            // earlier than its last arrival.
            let first = b.request_arrivals()[0];
            let last = *b.request_arrivals().last().expect("non-empty");
            prop_assert!(b.formed_at() <= first + SimDuration::from_micros(timeout_us));
            prop_assert!(b.formed_at() >= last);
        }
        // Batches are emitted in formation order.
        prop_assert!(plan.windows(2).all(|w| w[0].formed_at() <= w[1].formed_at()));
    }

    /// The serial device never overlaps kernels: following the enqueue/pump
    /// protocol yields strictly ordered, non-overlapping executions, and
    /// busy_total equals the sum of kernel durations.
    #[test]
    fn device_kernels_never_overlap(
        ops in prop::collection::vec((0u64..4, 1u64..200), 1..80),
        seed in 0u64..200,
    ) {
        use gpusim::{DeviceProfile, GpuDevice, JobTag};
        let profile = DeviceProfile::custom("prop", 1.0, 1 << 30, 8, 0.0)
            .with_kernel_gap(SimDuration::from_micros(2));
        let mut gpu = GpuDevice::new(profile, seed);
        let mut now = SimTime::ZERO;
        let mut executions = Vec::new();
        for (payload, &(tag, dur_us)) in ops.iter().enumerate() {
            gpu.enqueue(JobTag(tag), payload as u64, SimDuration::from_micros(dur_us), 1.0);
            // Pump until drained, advancing virtual time to each completion.
            while let Some(k) = gpu.try_start(now) {
                executions.push(k);
                now = k.end;
            }
        }
        prop_assert_eq!(executions.len(), ops.len(), "all kernels ran");
        for w in executions.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlap: {:?} then {:?}", w[0], w[1]);
        }
        let total: u64 = executions.iter().map(|k| k.duration.as_nanos()).sum();
        prop_assert_eq!(gpu.busy_total().as_nanos(), total);
    }

    /// Lottery draws always land on a registered job.
    #[test]
    fn lottery_draws_live_jobs(
        n in 1u64..20,
        seed in 0u64..500,
        draws in 1usize..60,
    ) {
        use olympian::Lottery;
        let mut p = Lottery::new(seed);
        let mut current = None;
        for j in 0..n {
            current = p.admit(JobId(j), 1 + (j % 4) as u32, 0, current);
        }
        let mut holder = current.expect("jobs admitted");
        for _ in 0..draws {
            holder = p.quantum_expired(holder).expect("jobs live");
            prop_assert!(holder.0 < n);
        }
    }

    /// DetRng::range_f64 stays within bounds for arbitrary ranges.
    #[test]
    fn rng_range_respects_bounds(seed in 0u64..1000, lo in -1e6..1e6f64, span in 1e-3..1e6f64) {
        let mut rng = DetRng::new(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let x = rng.range_f64(lo, hi);
            prop_assert!((lo..hi).contains(&x));
        }
    }
}
