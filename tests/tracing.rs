//! End-to-end checks of the trace layer: byte-determinism of the Chrome
//! trace-event export across worker counts, track well-formedness, and the
//! overhead-attribution snapshot.

use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientSpec, EngineConfig, RunReport, TraceConfig};
use simtime::SimDuration;
use std::sync::Arc;

/// A small mixed workload whose profile store is built through
/// `simpar::par_map` — the code path `--jobs N` parallelizes — so the
/// determinism test below actually covers the parallel harness.
fn traced_run(tc: TraceConfig) -> RunReport {
    let cfg = EngineConfig::default().with_trace(tc);
    let models = [
        models::mini::small(4),
        models::mini::branchy(2),
        models::mini::tiny(3),
    ];
    let profiles = simpar::par_map(&models, |_, m| Profiler::new(&cfg).profile(m));
    let mut store = ProfileStore::new();
    for p in profiles {
        store.insert(p);
    }
    let clients: Vec<ClientSpec> = [
        models::mini::small(4),
        models::mini::branchy(2),
        models::mini::tiny(3),
    ]
    .into_iter()
    .map(|m| ClientSpec::new(m, 3))
    .collect();
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(RoundRobin::new()),
        SimDuration::from_micros(200),
    );
    run_experiment(&cfg, clients, &mut sched)
}

#[test]
fn chrome_trace_is_byte_identical_across_job_counts() {
    std::env::remove_var(simpar::JOBS_ENV);
    let serial = traced_run(TraceConfig::full());
    assert!(serial.all_finished());
    assert_eq!(serial.trace.dropped, 0);
    let serial_json = serial.chrome_trace_json();

    std::env::set_var(simpar::JOBS_ENV, "2");
    let parallel = traced_run(TraceConfig::full());
    std::env::remove_var(simpar::JOBS_ENV);

    assert_eq!(
        serial_json,
        parallel.chrome_trace_json(),
        "trace export must not depend on the worker count"
    );
}

#[test]
fn chrome_trace_tracks_are_well_formed_and_monotonic() {
    // Full mode, so the GPU tracks carry kernel slices too.
    let report = traced_run(TraceConfig::full());
    let json = report.chrome_trace_json();
    let doc = microjson::Value::parse(&json).expect("well-formed JSON");
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_array()
        .expect("array");
    assert!(events.len() > 4);

    // Within each (pid, tid) track, timestamps of timed events never go
    // backwards — the property Perfetto's importer relies on.
    let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    let mut timed = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(microjson::Value::as_str).expect("ph");
        if ph == "M" {
            continue;
        }
        assert!(ph == "X" || ph == "i", "unexpected phase {ph:?}");
        let pid = e.get("pid").unwrap().as_u64().unwrap();
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        assert!(ts >= 0.0);
        if ph == "X" {
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        }
        let prev = last.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev, "track ({pid},{tid}) went backwards: {ts} < {prev}");
        *prev = ts;
        timed += 1;
    }
    assert!(timed > 0, "export contains timed events");
    // One slice track per client plus the scheduler and GPU tracks.
    assert!(last.keys().any(|&(pid, _)| pid == 1), "client process present");
    assert!(last.keys().any(|&(pid, _)| pid == 2), "gpu process present");
}

#[test]
fn overhead_snapshot_is_consistent_on_a_full_trace() {
    let report = traced_run(TraceConfig::full());
    let cfg = EngineConfig::default();
    let stats =
        trace::TraceStats::from_trace(&report.trace, cfg.switch_latency + cfg.launch_overhead);
    assert!(stats.token_switches > 0);
    assert!(stats.quantum.count > 0);
    assert!(stats.kernel_count > 0);
    assert!(stats.device_busy_us > 0.0);
    assert!(stats.device_busy_us <= stats.makespan_us);
    let overhead = stats.scheduler_overhead_us.expect("kernel spans present");
    assert!(overhead >= 0.0 && overhead <= stats.handoff_bound_us);
    let frac = stats.overhead_fraction().expect("non-empty run");
    assert!((0.0..1.0).contains(&frac), "overhead fraction {frac}");
    // The JSON snapshot round-trips through microjson.
    let json = stats.to_json().to_string();
    let doc = microjson::Value::parse(&json).expect("stats JSON parses");
    assert_eq!(
        doc.get("token_switches").unwrap().as_u64().unwrap(),
        stats.token_switches
    );
}
