//! Integration tests for the closed-loop control plane: degradation-ladder
//! hysteresis at engine level, the Shedding admission gate, and
//! byte-determinism of controlled runs across worker counts.

use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin, StoreCostOracle};
use serving::faults::{FaultConfig, FaultPlan};
use serving::{run_experiment, ClientOutcome, ClientSpec, EngineConfig, RunReport, TraceConfig};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;
use telemetry::{BurnWindows, DriftConfig, SloSpec, TelemetryConfig};

const QUANTUM: SimDuration = SimDuration::from_micros(200);
const CADENCE: SimDuration = SimDuration::from_micros(500);

/// Profiles the full batch and the Degraded-rung shrunk batch, so a ladder
/// escalation can re-register jobs at the smaller hint without a miss.
fn store_with_shrunk_batch(cfg: &EngineConfig, full_batch: u64) -> Arc<ProfileStore> {
    let divisor = controlplane::ControlConfig::new().batch_divisor;
    let mut store = ProfileStore::new();
    let profiler = Profiler::new(cfg);
    store.insert(profiler.profile(&models::mini::small(full_batch)));
    store.insert(profiler.profile(&models::mini::small((full_batch / divisor).max(1))));
    Arc::new(store)
}

fn fair(store: Arc<ProfileStore>) -> OlympianScheduler {
    OlympianScheduler::new(store, Box::new(RoundRobin::new()), QUANTUM)
}

fn counter(report: &RunReport, name: &str) -> u64 {
    report.telemetry.counter(name).unwrap_or(0)
}

/// The chaos `drift` incident at engine level: a sustained 1.4x slowdown
/// during [1ms, 50ms), profiles and objective from the healthy device.
/// Burn episodes during the window must walk the ladder up (shrinking
/// batch hints on the way); the quiet tail after the window must walk it
/// back down through the cool-window hysteresis — both edges visible as
/// counted, traced transitions.
#[test]
fn ladder_walks_up_under_burn_and_back_down_in_the_quiet_tail() {
    let clients = vec![ClientSpec::new(models::mini::small(4), 6); 6];
    let model_name = clients[0].model.name().to_string();
    let base = EngineConfig::default();
    let store = store_with_shrunk_batch(&base, 4);

    // Objective from the fault-free twin.
    let probe_cfg = base.with_telemetry(TelemetryConfig::enabled(CADENCE));
    let probe = run_experiment(&probe_cfg, clients.clone(), &mut fair(Arc::clone(&store)));
    let p50 = probe.telemetry.hist("run_latency_us").expect("probe histogram").p50;
    let objective = SimDuration::from_micros((p50 * 1.15).ceil() as u64);

    let plan = FaultPlan::new().with_slowdown(
        1.4,
        SimTime::from_millis(1),
        SimTime::from_millis(50),
    );
    let cfg = base
        .with_trace(TraceConfig::sampled())
        .with_telemetry(
            TelemetryConfig::enabled(CADENCE)
                .with_slo(SloSpec::new(&model_name, objective, 0.05))
                .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 }),
        )
        .with_faults(FaultConfig::new(plan))
        .with_control(controlplane::ControlConfig::new());
    let report = run_experiment(&cfg, clients, &mut fair(store));

    // Nobody is dropped: every client was admitted before the first burn,
    // so the ladder degrades accepted work instead of shedding sessions.
    assert!(report.all_finished(), "outcomes: {:?}",
        report.clients.iter().map(|c| &c.outcome).collect::<Vec<_>>());
    assert_eq!(counter(&report, "clients_admission_shed"), 0);

    // Up edge: repeated burn episodes escalate, and the Degraded rung
    // hands shrunk batch hints to re-registering runs.
    assert!(counter(&report, "alerts_slo_burn") >= 2, "burn alerts must repeat");
    assert!(counter(&report, "control_transitions") >= 2);
    assert!(counter(&report, "control_batch_shrinks") >= 1);
    let json = report.chrome_trace_json();
    assert!(json.contains("\"control-healthy-to-degraded\""));

    // Down edge: the quiet tail after the slowdown window clears the burn,
    // and a full cool window later the ladder steps back down.
    assert!(
        json.contains("\"control-degraded-to-healthy\"")
            || json.contains("\"control-shedding-to-degraded\""),
        "no downward transition on the trace"
    );
}

/// The Shedding rung refuses sessions that arrive while it holds: a client
/// starting after the ladder has escalated twice is turned away with
/// `AdmissionShed` before any memory or scheduler state is touched.
#[test]
fn shedding_rung_refuses_a_late_admission() {
    let base = EngineConfig::default();
    let store = store_with_shrunk_batch(&base, 4);
    let model_name = "mini-small";

    // An objective no run can meet: breaches are counted as runs complete
    // (from ~5ms under 3-way fair sharing), the windows after that burn,
    // and the ladder escalates Healthy -> Degraded -> Shedding by ~19ms —
    // well before the straggler shows up at 25ms.
    let objective = SimDuration::from_micros(100);
    let mut clients = vec![ClientSpec::new(models::mini::small(4), 4); 3];
    clients.push(
        ClientSpec::new(models::mini::small(4), 1).with_start(SimTime::from_millis(25)),
    );

    let cfg = base
        .with_trace(TraceConfig::sampled())
        .with_telemetry(
            TelemetryConfig::enabled(SimDuration::from_micros(200))
                .with_slo(SloSpec::new(model_name, objective, 0.05))
                .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 }),
        )
        .with_control(
            // A cool window longer than the run: once burns escalate the
            // ladder it stays up, so the straggler meets the Shedding gate.
            controlplane::ControlConfig::new()
                .with_cool_window(SimDuration::from_millis(50)),
        );
    let report = run_experiment(&cfg, clients, &mut fair(store));

    assert_eq!(counter(&report, "clients_admission_shed"), 1);
    assert!(matches!(
        report.clients[3].outcome,
        ClientOutcome::AdmissionShed { .. }
    ));
    // The first three were admitted while Healthy and are never evicted.
    assert_eq!(report.finished_count(), 3);
    assert!(report.chrome_trace_json().contains("\"admission-shed\""));
}

/// Renders a controlled run to the digits the reports print, so the byte
/// comparison is as strict as the real output.
fn render(report: &RunReport) -> String {
    format!(
        "makespan={:.9}s events={} finishes={:?} transitions={} shrinks={} \
         rebinds={} cancels={} sheds={}",
        report.makespan.as_secs_f64(),
        report.event_count,
        report.finish_times_secs(),
        counter(report, "control_transitions"),
        counter(report, "control_batch_shrinks"),
        counter(report, "control_profile_rebinds"),
        counter(report, "control_laxity_cancels"),
        counter(report, "clients_admission_shed"),
    )
}

/// One seed-forked closed-loop replication: control plane on, drift
/// recalibration live through the cost oracle, deadline-bound clients.
fn replication(seed: u64) -> String {
    let base = EngineConfig::default().with_seed(seed * 7919 + 13);
    let store = store_with_shrunk_batch(&base, 4);
    let run_d = store
        .resolve("mini-small", 4)
        .expect("profiled")
        .gpu_duration;
    let objective = SimDuration::from_micros(2_000);
    let cfg = base
        .with_telemetry(
            TelemetryConfig::enabled(CADENCE)
                .with_slo(SloSpec::new("mini-small", objective, 0.05))
                .with_burn(BurnWindows { short: 1, long: 2, threshold: 2.0 })
                .with_drift(DriftConfig::new(run_d, 0.25)),
        )
        .with_control(
            controlplane::ControlConfig::new()
                .with_cost(StoreCostOracle::new(Arc::clone(&store))),
        );
    let clients =
        vec![ClientSpec::new(models::mini::small(4), 3).with_run_deadline(objective); 4];
    let report = run_experiment(&cfg, clients, &mut fair(store));
    render(&report)
}

/// The closed loop must not cost determinism: replications through the
/// parallel harness are byte-identical to serial, and a same-seed rerun
/// reproduces the same controlled report exactly.
#[test]
fn closed_loop_reports_are_byte_identical_across_jobs() {
    let seeds: Vec<u64> = (0..8).collect();
    let serial = simpar::par_map_jobs(1, &seeds, |_, &s| replication(s));
    let parallel = simpar::par_map_jobs(8, &seeds, |_, &s| replication(s));
    assert_eq!(serial, parallel);
    // Same seed, fresh store and oracle: identical bytes.
    assert_eq!(replication(3), replication(3));
}
