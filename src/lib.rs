#![deny(missing_docs)]

//! Umbrella crate for the Olympian reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that the root-level
//! integration tests (`tests/`) and runnable examples (`examples/`) can pull
//! the whole stack in through a single dependency.
//!
//! The interesting code lives in the member crates:
//!
//! * [`simtime`] — virtual clock and discrete-event machinery
//! * [`tensor`] — tensor shapes and memory sizing
//! * [`dataflow`] — dataflow graphs and the cost-model API
//! * [`models`] — the calibrated 7-model DNN zoo
//! * [`gpusim`] — the simulated GPU device and driver
//! * [`serving`] — the TF-Serving-equivalent middleware
//! * [`olympian`] — the paper's contribution: profiler + scheduler + policies
//! * [`metrics`] — statistics and table rendering for experiments
//! * [`trace`] — deterministic structured tracing and Chrome-trace export

pub use dataflow;
pub use gpusim;
pub use metrics;
pub use models;
pub use olympian;
pub use serving;
pub use simtime;
pub use tensor;
pub use trace;
