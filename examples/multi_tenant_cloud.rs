//! Weighted fair sharing across paying tiers — the "cloud-based TF-Serving
//! offering" the paper's abstract motivates.
//!
//! Gold tenants pay for 4x, silver for 2x, bronze for 1x of the GPU. The
//! operator sets weights; Olympian meters each tenant's actual GPU duration
//! and the shares land proportional to payment.
//!
//! ```bash
//! cargo run --release --example multi_tenant_cloud
//! ```

use models::ModelKind;
use olympian::{OlympianScheduler, Profiler, ProfileStore, WeightedFair};
use serving::{run_experiment, ClientSpec, EngineConfig};
use simtime::{SimDuration, SimTime};
use std::sync::Arc;

fn main() {
    let cfg = EngineConfig::default();
    let model = models::load(ModelKind::ResNet101, 64).expect("zoo model");

    let tiers = [("gold", 4u32, 2usize), ("silver", 2, 2), ("bronze", 1, 2)];
    let mut clients = Vec::new();
    for &(_, weight, count) in &tiers {
        for _ in 0..count {
            clients.push(ClientSpec::new(model.clone(), 12).with_weight(weight));
        }
    }

    let mut store = ProfileStore::new();
    store.insert(Profiler::new(&cfg).profile(&model));
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(WeightedFair::new()),
        SimDuration::from_micros(1200),
    );
    let report = run_experiment(&cfg, clients, &mut sched);
    assert!(report.all_finished());

    // Measure GPU duration received by each tenant over the window where
    // everyone is active (up to the first finisher).
    let horizon: SimTime = report
        .clients
        .iter()
        .map(|c| c.finish_time())
        .min()
        .expect("clients exist");
    println!("GPU shares while all tenants are active (first {horizon}):\n");
    let mut idx = 0;
    let mut per_weight: Vec<(u32, f64)> = Vec::new();
    for &(tier, weight, count) in &tiers {
        for _ in 0..count {
            let c = &report.clients[idx];
            let gpu_secs = c.gpu_received_by(horizon).as_secs_f64();
            println!(
                "  {tier:<6} client {idx}: {gpu_secs:.2} s of GPU (weight {weight}), finished {}",
                c.finish_time()
            );
            per_weight.push((weight, gpu_secs));
            idx += 1;
        }
    }
    let gold: f64 = per_weight.iter().filter(|(w, _)| *w == 4).map(|(_, g)| g).sum::<f64>() / 2.0;
    let bronze: f64 = per_weight.iter().filter(|(w, _)| *w == 1).map(|(_, g)| g).sum::<f64>() / 2.0;
    println!(
        "\ngold : bronze GPU ratio while contending ≈ {:.2} (configured 4.0)",
        gold / bronze
    );
}
