//! Quickstart: profile a model offline, then fair-share the GPU among three
//! concurrent clients.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use olympian::{OlympianScheduler, Profiler, ProfileStore, RoundRobin};
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler};
use simtime::SimDuration;
use std::sync::Arc;

fn main() {
    // 1. A serving platform: simulated GTX 1080 Ti + worker-thread pool.
    let cfg = EngineConfig::default();

    // 2. A model. The zoo has the paper's seven DNNs; the miniatures are
    //    instant to run. Swap in e.g. `models::load(models::ModelKind::
    //    InceptionV4, 100).unwrap()` for the full-scale experience.
    let model = models::mini::branchy(8);

    // 3. Offline profiling: one instrumented run for per-node costs, one
    //    clean run for the GPU duration D.
    let profile = Profiler::new(&cfg).profile(&model);
    println!(
        "profiled {:?}: C = {} cost units, D = {}, rate C/D = {:.2}",
        profile.model,
        profile.total_cost,
        profile.gpu_duration,
        profile.rate()
    );
    let mut store = ProfileStore::new();
    store.insert(profile);

    // 4. Three identical clients, two batches each — first on stock
    //    TF-Serving, then under Olympian fair sharing.
    let clients = vec![ClientSpec::new(model, 2); 3];

    let baseline = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    println!("\n--- stock TF-Serving ---");
    for c in &baseline.clients {
        println!("  client {}: finished at {}", c.client, c.finish_time());
    }

    let quantum = SimDuration::from_micros(200);
    let mut sched = OlympianScheduler::new(Arc::new(store), Box::new(RoundRobin::new()), quantum);
    let report = run_experiment(&cfg, clients, &mut sched);
    println!("\n--- Olympian fair sharing (Q = {quantum}) ---");
    for c in &report.clients {
        println!(
            "  client {}: finished at {}, GPU time {}",
            c.client,
            c.finish_time(),
            c.total_gpu
        );
    }
    println!(
        "\n{} token switches, mean scheduling interval {:.3} ms, GPU util {:.1}%",
        report.switch_count,
        report.mean_interval_ms().unwrap_or(0.0),
        report.utilization * 100.0
    );
}
