//! End-to-end serving pipeline: Poisson request arrivals → TF-Serving-style
//! batcher → Olympian server facade.
//!
//! ```bash
//! cargo run --release --example batched_serving
//! ```

use metrics::Cdf;
use models::ModelKind;
use olympian::{PolicyKind, ServerBuilder};
use serving::batching::{plan_batches, poisson_arrivals, BatchingConfig};
use serving::{ClientSpec, EngineConfig};
use simtime::SimDuration;

fn main() {
    // 1. Requests arrive open-loop at 30/s for 6 seconds.
    let arrivals = poisson_arrivals(30.0, SimDuration::from_secs(6), 42);
    println!("{} requests arrived over 6 s", arrivals.len());

    // 2. The batcher closes a batch at 32 requests or after 150 ms.
    let plan = plan_batches(
        &arrivals,
        &BatchingConfig::new(32, SimDuration::from_millis(150)),
    );
    println!(
        "batcher formed {} batches (sizes {:?}...)",
        plan.len(),
        plan.iter().take(6).map(|b| b.size()).collect::<Vec<_>>()
    );

    // 3. Each batch size needs a model instance and a profile; the server
    //    facade profiles them all and picks a quantum for 5% tolerance.
    let mut batch_models = Vec::new();
    for b in &plan {
        batch_models.push(models::load(ModelKind::ResNet50, b.size()).expect("zoo model"));
    }
    let mut server = ServerBuilder::new()
        .engine(EngineConfig::default())
        .policy(PolicyKind::Fair)
        .fixed_quantum(SimDuration::from_micros(1200))
        .build_for_models(&batch_models);
    println!("server ready: policy {:?}, Q = {}", server.policy(), server.quantum());

    // 4. Serve: each planned batch is one Session::Run starting when the
    //    batch closed.
    let clients: Vec<ClientSpec> = plan
        .iter()
        .zip(&batch_models)
        .map(|(b, m)| ClientSpec::new(m.clone(), 1).with_start(b.formed_at()))
        .collect();
    let report = server.run(clients);
    assert!(report.all_finished());

    // 5. Per-request latency = batch completion − request arrival.
    let mut latencies_ms = Vec::new();
    for (client, b) in report.clients.iter().zip(&plan) {
        let done = client.finish_time();
        for &a in b.request_arrivals() {
            latencies_ms.push((done - a).as_millis_f64());
        }
    }
    let cdf = Cdf::of(latencies_ms);
    println!(
        "per-request latency: p50 = {:.0} ms, p95 = {:.0} ms, p99 = {:.0} ms \
         (GPU util {:.1}%)",
        cdf.quantile(0.50),
        cdf.quantile(0.95),
        cdf.quantile(0.99),
        report.utilization * 100.0
    );
}
