//! Cooperative gang scheduling on real OS threads.
//!
//! Everything else in this workspace runs on a virtual clock; this example
//! exercises the actual mechanism of the paper's §3.4 — suspend a whole
//! gang of CPU threads on a condition variable, resume another gang, rotate
//! on cost accumulation — with `std::thread` and `parking_lot`.
//!
//! ```bash
//! cargo run --release --example live_gang
//! ```

use olympian::threaded::{GangPool, GangWorkload};

fn main() {
    // Three jobs, two OS threads each, 200 nodes of 50 cost units apiece
    // (a node occupies the serial "GPU" for ~5 µs of real time).
    let workloads = vec![
        GangWorkload::new(200, 50, 2),
        GangWorkload::new(200, 50, 2),
        GangWorkload::new(200, 50, 2),
    ];
    let pool = GangPool::fair(500); // quantum: 500 cost units ≈ 10 nodes

    let t0 = std::time::Instant::now();
    let outcome = pool.run(workloads);
    println!("wall time: {:.1?}", t0.elapsed());
    println!("token switches: {}", outcome.switches);
    println!("finish order: {:?}", outcome.finish_order);
    for (i, t) in outcome.finish_times.iter().enumerate() {
        println!("  gang {i}: finished at {t:.1?}");
    }
    let secs: Vec<f64> = outcome.finish_times.iter().map(|t| t.as_secs_f64()).collect();
    let max = secs.iter().cloned().fold(0.0_f64, f64::max);
    let min = secs.iter().cloned().fold(f64::MAX, f64::min);
    println!("fairness: max/min finish = {:.2} (1.0 = perfectly fair)", max / min);

    // Weighted turns on real threads: gang 0 pays for 3x the GPU.
    println!("\n--- weighted 3:1 on real threads ---");
    let outcome = GangPool::fair(500).run(vec![
        GangWorkload::new(200, 50, 2).with_weight(3),
        GangWorkload::new(200, 50, 2),
    ]);
    let heavy = outcome.finish_times[0].as_secs_f64();
    let light = outcome.finish_times[1].as_secs_f64();
    println!(
        "gang 0 (weight 3): {heavy:.4}s, gang 1 (weight 1): {light:.4}s, \
         ratio {:.2} (theory (k+1)/2k = 0.67)",
        heavy / light
    );
}
