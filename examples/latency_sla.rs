//! Service differentiation for a latency-sensitive tenant.
//!
//! The scenario from the paper's introduction: a user-facing application
//! (think: interactive image search) shares a serving GPU with batch
//! analytics jobs. Under stock TF-Serving the interactive tenant's latency
//! is at the mercy of driver arbitration; under Olympian priority
//! scheduling it gets the GPU whenever it has work.
//!
//! ```bash
//! cargo run --release --example latency_sla
//! ```

use metrics::Summary;
use models::ModelKind;
use olympian::{OlympianScheduler, Priority, Profiler, ProfileStore};
use serving::{run_experiment, ClientSpec, EngineConfig, FifoScheduler, RunReport};
use simtime::SimDuration;
use std::sync::Arc;

/// Per-request latencies (ms) of the interactive client (client 0).
fn interactive_latencies(report: &RunReport) -> Vec<f64> {
    let runs = &report.clients[0].run_finish_times;
    let mut latencies = Vec::with_capacity(runs.len());
    let mut prev = simtime::SimTime::ZERO;
    for &t in runs {
        latencies.push((t - prev).as_millis_f64());
        prev = t;
    }
    latencies
}

fn workload() -> Vec<ClientSpec> {
    // Client 0: interactive, small batches, many requests, top priority.
    let interactive = models::load(ModelKind::ResNet50, 16).expect("zoo model");
    let mut clients = vec![ClientSpec::new(interactive, 40).with_priority(10)];
    // Clients 1-4: batch analytics on big batches, low priority.
    let batch = models::load(ModelKind::InceptionV4, 100).expect("zoo model");
    clients.extend(vec![ClientSpec::new(batch, 4).with_priority(1); 4]);
    clients
}

fn main() {
    let cfg = EngineConfig::default();
    let clients = workload();

    let baseline = run_experiment(&cfg, clients.clone(), &mut FifoScheduler::new());
    let base_lat = Summary::of(interactive_latencies(&baseline));

    let profiler = Profiler::new(&cfg);
    let mut store = ProfileStore::new();
    for spec in &clients {
        if store.get(spec.model.name(), spec.model.batch()).is_none() {
            store.insert(profiler.profile(&spec.model));
        }
    }
    let mut sched = OlympianScheduler::new(
        Arc::new(store),
        Box::new(Priority::new()),
        SimDuration::from_micros(1200),
    );
    let olympian = run_experiment(&cfg, clients, &mut sched);
    let oly_lat = Summary::of(interactive_latencies(&olympian));

    println!("interactive tenant per-request latency (40 requests, 4 batch jobs competing):");
    println!("  stock TF-Serving : mean {:.1} ms, max {:.1} ms", base_lat.mean(), base_lat.max());
    println!("  Olympian priority: mean {:.1} ms, max {:.1} ms", oly_lat.mean(), oly_lat.max());
    println!(
        "  speedup: {:.1}x mean, {:.1}x tail",
        base_lat.mean() / oly_lat.mean(),
        base_lat.max() / oly_lat.max()
    );
    println!(
        "\nbatch tenants still finish (makespans: {:.1} s vs {:.1} s — priority \
         costs the batch tier little because the interactive job is small).",
        baseline.makespan.as_secs_f64(),
        olympian.makespan.as_secs_f64()
    );
    assert!(olympian.all_finished() && baseline.all_finished());
}
